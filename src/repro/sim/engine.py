"""Parallel multi-seed experiment engine.

The paper's measurement protocol is embarrassingly parallel — every data
point is the mean of independent seeded simulation runs — so this engine
fans the (spec, seed) grid out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and memoises each run in an optional on-disk
:class:`~repro.sim.cache.ResultCache`:

* ``jobs=1`` executes in-process on the exact code path a worker would run,
  so determinism tests can compare serial and parallel results directly;
* results are assembled in task order regardless of completion order, so
  formatted experiment output is byte-identical at any ``jobs`` setting;
* cache hits skip simulation entirely and are reported per run through the
  progress callback and in :class:`~repro.sim.runner.RunStats`.

The engine is failure-tolerant: a run that raises (or exceeds
``run_timeout``) is retried up to ``retries`` times with capped, jittered
exponential backoff, and if it still fails it is *quarantined* — recorded as a
:class:`~repro.sim.runner.RunFailure` on the setting's
:class:`~repro.sim.runner.AggregateResult` — while the rest of the batch
completes and aggregates over the successful runs. A broken worker pool
(e.g. a worker killed by the OOM killer) degrades gracefully: the engine
falls back to the in-process serial path for whatever work remains.

Worker processes cannot unpickle closures, which is why the engine runs on
declarative :class:`~repro.sim.spec.ExperimentSpec` values: the spec
travels to the worker as plain data and is resolved into live policy /
trace / selection objects there, once per seed.

Trace resolution is additionally memoised through an optional
:class:`~repro.workload.trace_cache.TraceCache`: each unique
(workload, seed) trace in a batch is generated and compiled **once per
sweep** — in-process for serial runs; for pooled runs the engine pre-warms
the on-disk compiled binaries (one build per unique trace, fanned over the
pool) and every worker process opens the same cache through its
initializer, so warm workers resolve traces by loading compact binaries
instead of re-running the workload generator. Compiled-trace replay is
event-for-event identical to the generator, so cached and uncached runs
produce byte-identical summaries (and share result-cache fingerprints).
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.telemetry import RunTelemetry, run_telemetry_path
from repro.sim.cache import ResultCache, spec_fingerprint
from repro.sim.metrics import CollectionRecord, SimulationSummary
from repro.sim.runner import AggregateResult, RunFailure, RunStats
from repro.sim.simulator import Simulation
from repro.sim.spec import (
    ExperimentSpec,
    build_policy,
    build_selection,
)
from repro.workload.shm import SharedTraceArena
from repro.workload.trace_cache import TraceCache, trace_fingerprint


class RunTimeoutError(Exception):
    """A single simulation run exceeded the engine's ``run_timeout``."""


@dataclass(frozen=True)
class SeedOutcome:
    """One settled run (success, cache hit, or final failure)."""

    label: str
    seed: int
    #: True when the run was answered from the result cache.
    cached: bool
    #: Wall-clock seconds the simulation took (0 for cache hits).
    wall_time: float
    #: Runs settled so far, including this one.
    completed: int
    #: Total runs in the batch.
    total: int
    #: True when the run failed every attempt and was quarantined.
    failed: bool = False
    #: ``repr`` of the final exception for failed runs.
    error: Optional[str] = None


#: Called once per settled run (cache hit, simulation, or final failure).
ProgressCallback = Callable[[SeedOutcome], None]

CacheLike = Union[ResultCache, str, Path, None]
TraceCacheLike = Union[TraceCache, str, Path, None]

#: Per-worker-process trace cache, installed by :func:`_worker_init` when a
#: pool is created. Workers resolve each (workload, seed) trace through it:
#: the in-process memo answers repeats within the worker, the shared on-disk
#: binaries answer everything the pre-warm pass (or a sibling) compiled.
_WORKER_TRACE_CACHE: Optional[TraceCache] = None


def _worker_init(
    trace_cache_root: Optional[str],
    shared_traces: Optional[dict[str, str]] = None,
) -> None:
    """Process-pool initializer: open this worker's trace cache once.

    ``trace_cache_root=None`` still installs a memo-only cache so a warm
    worker that receives several tasks for the same (workload, seed) skips
    the rebuild even without an on-disk layer.

    ``shared_traces`` (fingerprint → shared-memory segment name) registers
    the parent's published trace segments: resolutions of those traces
    attach to the one shared mapping and decode zero-copy instead of
    re-reading the on-disk binary per worker.
    """
    global _WORKER_TRACE_CACHE
    _WORKER_TRACE_CACHE = TraceCache(trace_cache_root)
    if shared_traces:
        _WORKER_TRACE_CACHE.attach_shared(shared_traces)


def _worker_simulate(spec, seed, keep_records, timeout, telemetry_path=None):
    """The unit of work shipped to pool workers (module-level: picklable)."""
    return _simulate(
        spec, seed, keep_records, timeout=timeout,
        trace_cache=_WORKER_TRACE_CACHE, telemetry_path=telemetry_path,
    )


def _worker_warm_trace(workload, seed) -> None:
    """Pre-warm task: materialise one (workload, seed) compiled trace."""
    if _WORKER_TRACE_CACHE is not None:
        _WORKER_TRACE_CACHE.warm(workload, seed)


@dataclass
class _Progress:
    """Per-batch progress counters.

    Local to each ``run_batch`` call (threaded through explicitly, never
    stored on the runner) so one :class:`ParallelRunner` can serve
    overlapping batches — e.g. re-entrant use from a progress callback or
    from multiple threads — without the counters of one batch corrupting
    another's.
    """

    total: int
    completed: int = 0


@dataclass(frozen=True)
class _Success:
    summary: SimulationSummary
    records: Optional[list[CollectionRecord]]
    cached: bool
    elapsed: float
    #: Simulation attempts spent (0 for cache hits, >=1 otherwise).
    attempts: int
    #: Telemetry file this run wrote (None when telemetry is off or the
    #: run was a cache hit — hits skip simulation and write nothing).
    telemetry: Optional[str] = None


@dataclass(frozen=True)
class _Failure:
    error: str
    attempts: int


def _as_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _as_trace_cache(cache: TraceCacheLike) -> Optional[TraceCache]:
    if cache is None or isinstance(cache, TraceCache):
        return cache
    return TraceCache(cache)


def _simulate(
    spec: ExperimentSpec,
    seed: int,
    keep_records: bool,
    timeout: Optional[float] = None,
    trace_cache: Optional[TraceCache] = None,
    telemetry_path: Union[str, Path, None] = None,
) -> tuple[SimulationSummary, Optional[list[CollectionRecord]], float]:
    """Execute one (spec, seed) run.

    ``timeout`` is enforced with a monotonic deadline checked once per
    trace event (plus once after the run completes, so even runs shorter
    than one check interval are measured against their budget). No signals
    are involved, so enforcement works identically on every platform and
    off the main thread. With a ``trace_cache`` the
    workload trace is resolved through the compiled-trace cache (memo /
    disk / build) instead of re-running the generator; replay is
    event-identical, so the results don't depend on which path ran.

    With a ``telemetry_path`` the run is observed by a
    :class:`~repro.obs.telemetry.RunTelemetry` written to that file on
    success (a failed attempt writes nothing — its buffered records die
    with the exception). Telemetry never changes simulation results.
    """
    started = time.perf_counter()
    obs = None
    if telemetry_path is not None:
        obs = RunTelemetry(
            telemetry_path,
            kind="run",
            label=spec.label or spec.policy.kind,
            seed=seed,
        )
    deadline = time.monotonic() + timeout if timeout is not None else None
    if trace_cache is not None:
        policy = build_policy(spec.policy, seed)
        selection = build_selection(spec.selection, seed)
        trace = trace_cache.get_or_build(spec.workload, seed)
    else:
        policy, trace, selection = spec.resolve(seed)
    faults = FaultInjector(spec.faults) if spec.faults is not None else None
    sim = Simulation(
        policy=policy, selection=selection, config=spec.sim, faults=faults,
        obs=obs,
    )
    # The deadline is handed to the run itself (scalar replay wraps the
    # trace in a per-event guard; batched replay checks it in-loop) so the
    # CompiledTrace columns stay visible to the interpreter choice.
    if obs is not None:
        with obs.span("simulate"):
            result = sim.run(trace, deadline=deadline)
    else:
        result = sim.run(trace, deadline=deadline)
    if deadline is not None and time.monotonic() >= deadline:
        raise RunTimeoutError("simulation run exceeded run_timeout")
    elapsed = time.perf_counter() - started
    if obs is not None:
        obs.close()
    records = list(result.collections) if keep_records else None
    return result.summary, records, elapsed


class ParallelRunner:
    """Runs (spec, seed) grids across worker processes with caching.

    Args:
        jobs: Worker processes; ``None`` uses ``os.cpu_count()``; ``1``
            runs everything in-process (the deterministic baseline path).
        cache: A :class:`ResultCache`, a directory path to open one in, or
            ``None`` to disable caching.
        progress: Callback invoked once per settled run.
        retries: Extra attempts per run after the first one fails
            (exponential backoff between attempts). ``0`` fails fast.
        retry_backoff: Base backoff in seconds; attempt *n* waits
            ``retry_backoff * 2**(n-1)`` (capped, jittered) before
            retrying.
        retry_backoff_cap: Upper bound in seconds on any single backoff
            wait — keeps deep retry chains from doubling into minutes.
        run_timeout: Per-run wall-clock budget in seconds; a run exceeding
            it is treated as failed (and retried like any other failure).
            Enforced with a per-event monotonic-deadline check — portable
            across platforms and threads, no signals involved.
        faults: A :class:`~repro.faults.plan.FaultPlan` composed onto every
            spec in the batch that does not already carry one — the CLI's
            ``--faults`` plumbing. Fault plans are part of the cache
            fingerprint, so faulty and fault-free runs never share entries.
        trace_cache: A :class:`~repro.workload.trace_cache.TraceCache`, a
            directory path to open one in, or ``None`` to resolve traces
            the legacy way (regenerated per run). With a cache, each unique
            (workload, seed) trace in a batch is built once per sweep and
            replayed everywhere — in-process for serial runs, via pre-warmed
            on-disk compiled binaries for pooled runs.
        telemetry: A directory to write JSON-lines telemetry into, or
            ``None`` (the default) to disable observability entirely. When
            set, every simulated run writes one per-run file (GC timeline,
            metrics, summary — see :mod:`repro.obs.telemetry`) and each
            ``run_batch`` call writes one ``engine_NNN.jsonl`` file with
            batch-level spans, cache counters and failure events. Cache
            hits skip simulation and write no per-run file. Telemetry only
            observes: summaries and cache fingerprints are identical with
            it on or off.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: CacheLike = None,
        progress: Optional[ProgressCallback] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
        retry_backoff_cap: float = 30.0,
        run_timeout: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        trace_cache: TraceCacheLike = None,
        telemetry: Union[str, Path, None] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if retry_backoff_cap <= 0:
            raise ValueError(
                f"retry_backoff_cap must be > 0, got {retry_backoff_cap}"
            )
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError(f"run_timeout must be > 0, got {run_timeout}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = _as_cache(cache)
        self.progress = progress
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.run_timeout = run_timeout
        self.faults = faults
        self.trace_cache = _as_trace_cache(trace_cache)
        self.telemetry = Path(telemetry) if telemetry is not None else None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        seeds: Sequence[int],
        keep_records: bool = False,
    ) -> AggregateResult:
        """Run one spec across several seeds and aggregate."""
        return self.run_batch([spec], seeds, keep_records=keep_records)[0]

    def run_batch(
        self,
        specs: Sequence[ExperimentSpec],
        seeds: Sequence[int],
        keep_records: bool = False,
    ) -> list[AggregateResult]:
        """Run several specs over the same seeds, fanning all runs out at once.

        Batching whole sweeps (every fraction × every seed) into one call
        keeps all workers busy even when a single setting has fewer seeds
        than there are cores. Results come back in spec order, each an
        :class:`AggregateResult` with per-setting cache/wall-time stats.

        The batch always completes: runs that fail after retries are
        quarantined into the setting's ``failures`` list and excluded from
        its aggregate statistics.
        """
        specs = list(specs)
        seeds = list(seeds)
        if not specs:
            return []
        if not seeds:
            raise ValueError("at least one seed is required")
        if self.faults is not None:
            specs = [
                spec if spec.faults is not None
                else dataclasses.replace(spec, faults=self.faults)
                for spec in specs
            ]

        tasks = [(si, seed) for si in range(len(specs)) for seed in seeds]
        outcomes: list[Union[_Success, _Failure, None]] = [None] * len(tasks)
        fingerprints: list[Optional[str]] = [None] * len(tasks)
        progress = _Progress(total=len(tasks))

        batch_tel, prev_cache_metrics = self._open_batch_telemetry(specs, seeds)
        batch_started = time.perf_counter()

        try:
            pending: list[int] = []
            for index, (si, seed) in enumerate(tasks):
                if self.cache is not None:
                    fingerprint = spec_fingerprint(specs[si], seed)
                    fingerprints[index] = fingerprint
                    hit = self.cache.get(fingerprint, want_records=keep_records)
                    if hit is not None:
                        outcomes[index] = _Success(
                            hit.summary, hit.records, cached=True, elapsed=0.0,
                            attempts=0,
                        )
                        self._emit(
                            progress, specs[si], seed, cached=True, wall_time=0.0
                        )
                        continue
                pending.append(index)

            tel_paths: Optional[list[Optional[str]]] = None
            if self.telemetry is not None:
                tel_paths = [None] * len(tasks)
                for index in pending:
                    si, seed = tasks[index]
                    label = specs[si].label or specs[si].policy.kind
                    tel_paths[index] = str(
                        run_telemetry_path(self.telemetry, index, label, seed)
                    )

            workers = min(self.jobs, len(pending))
            if workers > 1:
                try:
                    self._run_pooled(
                        specs, tasks, pending, fingerprints, outcomes,
                        keep_records, workers, progress, tel_paths,
                    )
                except BrokenProcessPool:
                    # The pool died under us (worker killed, interpreter
                    # mismatch, ...). Degrade gracefully: finish whatever is
                    # still unsettled on the in-process serial path.
                    remaining = [i for i in pending if outcomes[i] is None]
                    self._run_serial(
                        specs, tasks, remaining, fingerprints, outcomes,
                        keep_records, progress, tel_paths,
                    )
            else:
                self._run_serial(
                    specs, tasks, pending, fingerprints, outcomes,
                    keep_records, progress, tel_paths,
                )

            results = self._assemble(specs, seeds, tasks, outcomes, keep_records)
        finally:
            if batch_tel is not None and self.cache is not None:
                self.cache.metrics = prev_cache_metrics
        if batch_tel is not None:
            self._close_batch_telemetry(batch_tel, results, batch_started)
        return results

    # ------------------------------------------------------------------
    # Batch telemetry
    # ------------------------------------------------------------------

    def _open_batch_telemetry(self, specs, seeds):
        """Open the engine-level telemetry file for one batch, if enabled.

        Returns ``(telemetry, previous_cache_metrics)``; while the batch
        runs, the result cache counts hits/misses into the batch registry
        (restored by ``run_batch``'s finally clause).
        """
        if self.telemetry is None:
            return None, None
        root = self.telemetry
        root.mkdir(parents=True, exist_ok=True)
        sequence = sum(1 for _ in root.glob("engine_*.jsonl"))
        batch_tel = RunTelemetry(
            root / f"engine_{sequence:03d}.jsonl",
            kind="engine",
            label="batch",
            specs=len(specs),
            seeds=len(seeds),
            jobs=self.jobs,
            cache=self.cache is not None,
            trace_cache=self.trace_cache is not None,
        )
        prev_cache_metrics = None
        if self.cache is not None:
            prev_cache_metrics = self.cache.metrics
            self.cache.metrics = batch_tel.metrics
        return batch_tel, prev_cache_metrics

    def _close_batch_telemetry(self, batch_tel, results, started) -> None:
        """Record batch-level spans/metrics/events and write the file."""
        batch_tel.tracer.record("run_batch", time.perf_counter() - started)
        merged = RunStats()
        for aggregate in results:
            if aggregate.stats is not None:
                merged.merge(aggregate.stats)
            for failure in aggregate.failures:
                batch_tel.event(
                    "run_failed",
                    label=failure.label,
                    seed=failure.seed,
                    error=failure.error,
                    attempts=failure.attempts,
                )
        metrics = batch_tel.metrics
        metrics.gauge("engine.runs").set(merged.runs)
        metrics.gauge("engine.cache_hits").set(merged.cache_hits)
        metrics.gauge("engine.cache_misses").set(merged.cache_misses)
        metrics.gauge("engine.failures").set(merged.failures)
        metrics.gauge("engine.retries").set(merged.retries)
        metrics.gauge("engine.sim_wall_s").set(round(merged.wall_time, 6))
        metrics.gauge("engine.telemetry_files").set(len(merged.telemetry_paths))
        if self.trace_cache is not None:
            metrics.set_many(
                self.trace_cache.stats.as_metrics(), prefix="trace_cache."
            )
        if self.cache is not None:
            metrics.gauge("result_cache.quarantined_total").set(
                self.cache.quarantined
            )
        batch_tel.close()

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        """Sleep before retry ``attempt`` (1-based): capped, jittered.

        The uncapped exponential doubles into minutes within a dozen
        attempts; ``retry_backoff_cap`` bounds the wait. Full-half jitter
        (a uniform draw from ``[delay/2, delay)``) decorrelates retry
        storms when many runs fail at once. Wall-clock only — simulation
        results never depend on the sleep.
        """
        delay = min(
            self.retry_backoff * (2 ** (attempt - 1)), self.retry_backoff_cap
        )
        if delay > 0:
            time.sleep(delay * (0.5 + 0.5 * random.random()))

    def _run_serial(self, specs, tasks, pending, fingerprints, outcomes,
                    keep_records, progress, tel_paths=None):
        # Only pass trace_cache / telemetry_path when configured: the bare
        # call shape is a compatibility surface (tests and downstream code
        # substitute 4-argument _simulate doubles).
        base_extra = (
            {"trace_cache": self.trace_cache}
            if self.trace_cache is not None
            else {}
        )
        for index in pending:
            si, seed = tasks[index]
            extra = base_extra
            tel_path = tel_paths[index] if tel_paths is not None else None
            if tel_path is not None:
                extra = {**base_extra, "telemetry_path": tel_path}
            attempt = 0
            while True:
                attempt += 1
                try:
                    summary, records, elapsed = _simulate(
                        specs[si], seed, keep_records,
                        timeout=self.run_timeout, **extra,
                    )
                except Exception as exc:
                    if attempt <= self.retries:
                        self._backoff(attempt)
                        continue
                    self._fail(progress, index, specs[si], seed, exc, attempt,
                               outcomes)
                    break
                self._finish(progress, index, specs[si], seed, summary, records,
                             elapsed, attempt, fingerprints[index], outcomes,
                             telemetry=tel_path)
                break

    def _warm_traces(self, specs, tasks, pending, pool) -> None:
        """Materialise each unique (workload, seed) trace once per sweep.

        Fans one build task per cold unique trace over the pool before any
        simulation is submitted, so no two policy cells ever rebuild the
        same trace. Build errors are deliberately swallowed here — a
        genuinely broken workload fails (and is retried / quarantined)
        through the normal simulation path, with proper accounting.
        """
        unique: dict[str, tuple] = {}
        for index in pending:
            si, seed = tasks[index]
            try:
                key = trace_fingerprint(specs[si].workload, seed)
            except TypeError:
                continue  # uncacheable workload: builds per run, as before
            if key not in unique and key not in self.trace_cache:
                unique[key] = (specs[si].workload, seed)
        if not unique:
            return
        futures = [
            pool.submit(_worker_warm_trace, workload, seed)
            for workload, seed in unique.values()
        ]
        for future in futures:
            try:
                future.result()
            except BrokenProcessPool:
                raise
            except Exception:
                pass

    def _publish_shared_traces(self, specs, tasks, pending):
        """Map this batch's on-disk compiled traces into shared memory.

        Returns a :class:`~repro.workload.shm.SharedTraceArena` (or ``None``
        when nothing was publishable); the caller ships ``arena.plan()`` to
        the pool initializer and closes the arena once the pool is gone.

        Only traces already materialised on disk can be published — the
        plan travels in the pool's ``initargs``, which are fixed before the
        warm pass runs. Cold traces therefore load from disk this sweep and
        become shareable in the next one. Every failure here degrades to
        the disk path, never to an error.
        """
        cache = self.trace_cache
        arena = None
        seen: set = set()
        for index in pending:
            si, seed = tasks[index]
            try:
                key = trace_fingerprint(specs[si].workload, seed)
            except TypeError:
                continue  # uncacheable workload: never shared
            if key in seen:
                continue
            seen.add(key)
            path = cache.entry_path(key)
            if path is None:
                continue  # cold: the warm pass will build it, on disk only
            if arena is None:
                arena = SharedTraceArena()
            if arena.publish_file(key, path) is not None:
                cache.stats.shm_published += 1
        return arena

    def _run_pooled(self, specs, tasks, pending, fingerprints, outcomes,
                    keep_records, workers, progress, tel_paths=None):
        attempts = {index: 1 for index in pending}
        trace_root = (
            str(self.trace_cache.root)
            if self.trace_cache is not None and self.trace_cache.root is not None
            else None
        )
        arena = None
        shared_plan = None
        if trace_root is not None:
            arena = self._publish_shared_traces(specs, tasks, pending)
            if arena is not None and len(arena):
                shared_plan = arena.plan()
        try:
            self._run_pooled_inner(
                specs, tasks, pending, fingerprints, outcomes, keep_records,
                workers, progress, tel_paths, attempts, trace_root, shared_plan,
            )
        finally:
            if arena is not None:
                # Workers have exited (the pool context manager joins them),
                # so unlinking here frees the segments everywhere.
                arena.close()

    def _run_pooled_inner(self, specs, tasks, pending, fingerprints, outcomes,
                          keep_records, workers, progress, tel_paths, attempts,
                          trace_root, shared_plan):
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(trace_root, shared_plan),
        ) as pool:
            if self.trace_cache is not None and self.trace_cache.root is not None:
                self._warm_traces(specs, tasks, pending, pool)

            def submit(index):
                si, seed = tasks[index]
                args = (specs[si], seed, keep_records, self.run_timeout)
                tel_path = tel_paths[index] if tel_paths is not None else None
                if tel_path is not None:
                    # Appended only when set — monkeypatched 4-argument
                    # _worker_simulate doubles keep working otherwise.
                    args = args + (tel_path,)
                return pool.submit(_worker_simulate, *args)

            futures = {submit(index): index for index in pending}
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    si, seed = tasks[index]
                    try:
                        summary, records, elapsed = future.result()
                    except BrokenProcessPool:
                        raise  # pool is dead; outer handler goes serial
                    except Exception as exc:
                        if attempts[index] <= self.retries:
                            self._backoff(attempts[index])
                            attempts[index] += 1
                            futures[submit(index)] = index
                            continue
                        self._fail(progress, index, specs[si], seed, exc,
                                   attempts[index], outcomes)
                        continue
                    self._finish(progress, index, specs[si], seed, summary,
                                 records, elapsed, attempts[index],
                                 fingerprints[index], outcomes,
                                 telemetry=(
                                     tel_paths[index]
                                     if tel_paths is not None
                                     else None
                                 ))

    # ------------------------------------------------------------------
    # Settling
    # ------------------------------------------------------------------

    def _finish(self, progress, index, spec, seed, summary, records, elapsed,
                attempts, fingerprint, outcomes, telemetry=None):
        outcomes[index] = _Success(
            summary, records, cached=False, elapsed=elapsed, attempts=attempts,
            telemetry=telemetry,
        )
        if self.cache is not None and fingerprint is not None:
            self.cache.put(fingerprint, summary, records)
        self._emit(progress, spec, seed, cached=False, wall_time=elapsed)

    def _fail(self, progress, index, spec, seed, exc, attempts, outcomes):
        outcomes[index] = _Failure(error=repr(exc), attempts=attempts)
        self._emit(progress, spec, seed, cached=False, wall_time=0.0,
                   failed=True, error=repr(exc))

    def _emit(self, progress, spec, seed, cached, wall_time,
              failed=False, error=None):
        progress.completed += 1
        if self.progress is None:
            return
        self.progress(
            SeedOutcome(
                label=spec.label or spec.policy.kind,
                seed=seed,
                cached=cached,
                wall_time=wall_time,
                completed=progress.completed,
                total=progress.total,
                failed=failed,
                error=error,
            )
        )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    @staticmethod
    def _assemble(specs, seeds, tasks, outcomes, keep_records):
        results = []
        for si, spec in enumerate(specs):
            stats = RunStats()
            aggregate = AggregateResult(summaries=[], stats=stats)
            for j, seed in enumerate(seeds):
                outcome = outcomes[si * len(seeds) + j]
                if isinstance(outcome, _Failure):
                    stats.failures += 1
                    stats.retries += outcome.attempts - 1
                    aggregate.failures.append(
                        RunFailure(
                            label=spec.label or spec.policy.kind,
                            seed=seed,
                            error=outcome.error,
                            attempts=outcome.attempts,
                        )
                    )
                    continue
                aggregate.summaries.append(outcome.summary)
                if keep_records:
                    aggregate.records.append(outcome.records or [])
                if outcome.cached:
                    stats.cache_hits += 1
                else:
                    stats.cache_misses += 1
                    stats.retries += outcome.attempts - 1
                if outcome.telemetry is not None:
                    stats.telemetry_paths.append(outcome.telemetry)
                stats.wall_time += outcome.elapsed
            results.append(aggregate)
        return results


def run_experiment(
    spec: ExperimentSpec,
    *,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: Optional[ProgressCallback] = None,
    keep_records: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.5,
    retry_backoff_cap: float = 30.0,
    run_timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    trace_cache: TraceCacheLike = None,
    telemetry: Union[str, Path, None] = None,
) -> AggregateResult:
    """Run one experimental setting across seeds, in parallel, with caching.

    The declarative counterpart of :func:`repro.sim.runner.run_seeds`:
    ``spec`` names everything by registry key, so runs can execute in worker
    processes (``jobs``; ``None`` = all cores, ``1`` = in-process) and be
    memoised in ``cache``. ``keep_records=True`` additionally returns each
    run's per-collection records (Figures 6/7 need them). ``retries``,
    ``run_timeout`` and ``faults`` configure the failure-tolerance layer,
    ``trace_cache`` memoises compiled workload traces across runs, and
    ``telemetry`` names a directory for per-run JSON-lines observability —
    see :class:`ParallelRunner`.
    """
    runner = ParallelRunner(
        jobs=jobs, cache=cache, progress=progress, retries=retries,
        retry_backoff=retry_backoff, retry_backoff_cap=retry_backoff_cap,
        run_timeout=run_timeout, faults=faults,
        trace_cache=trace_cache, telemetry=telemetry,
    )
    return runner.run(spec, seeds, keep_records=keep_records)


def run_experiment_batch(
    specs: Sequence[ExperimentSpec],
    *,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: Optional[ProgressCallback] = None,
    keep_records: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.5,
    retry_backoff_cap: float = 30.0,
    run_timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    trace_cache: TraceCacheLike = None,
    telemetry: Union[str, Path, None] = None,
) -> list[AggregateResult]:
    """Run several settings over the same seeds in one parallel fan-out."""
    runner = ParallelRunner(
        jobs=jobs, cache=cache, progress=progress, retries=retries,
        retry_backoff=retry_backoff, retry_backoff_cap=retry_backoff_cap,
        run_timeout=run_timeout, faults=faults,
        trace_cache=trace_cache, telemetry=telemetry,
    )
    return runner.run_batch(specs, seeds, keep_records=keep_records)
