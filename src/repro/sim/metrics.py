"""Measurement machinery for simulation runs.

The paper's measurement protocol (§3.2, §4.1):

* metrics are *sampled at each database event* ("an approximation of a
  uniform sample, given the assumption of an active workload");
* each run's cold-start **preamble** — the first N collections — is excluded
  from means ("we isolate the preamble to the significant part of a run");
* achieved GC-I/O percentage is the collector's share of all I/O over the
  significant region; achieved garbage percentage is the event-sampled mean
  of the database garbage fraction over the significant region.

:class:`Sampler` implements this protocol with O(1) state per event, and can
optionally retain full per-event and per-collection series for the
time-varying figures (6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


@dataclass
class CollectionRecord:
    """Per-collection observation (drives Figures 6 and 7)."""

    number: int
    phase: str
    event_index: int
    overwrite_clock: int
    partition: int
    reclaimed_bytes: int
    live_bytes: int
    gc_io: int
    interval_next: float
    actual_garbage_fraction: float
    estimated_garbage_fraction: Optional[float]
    target_garbage_fraction: Optional[float]
    db_size: int
    #: FGS state at the recording moment: pointer overwrites still pending
    #: across all partitions (the victim's were just reset) and the
    #: partition count. Defaulted so records cached before these fields
    #: existed still rehydrate. The learned estimator trains on them.
    pending_overwrites: int = 0
    partition_count: int = 0

    @property
    def yield_bytes(self) -> int:
        """Collection yield — bytes reclaimed (middle graph of Figure 7b)."""
        return self.reclaimed_bytes

    @property
    def estimator_error(self) -> Optional[float]:
        """Signed estimator error vs the oracle (estimated − actual).

        None when the policy published no estimate (e.g. fixed-rate runs).
        """
        if self.estimated_garbage_fraction is None:
            return None
        return self.estimated_garbage_fraction - self.actual_garbage_fraction


@dataclass(slots=True)
class RunningMean:
    """Streaming mean/min/max accumulator."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


@dataclass
class SimulationSummary:
    """Headline results of one simulation run."""

    events: int
    collections: int
    preamble_collections: int
    #: Event-sampled mean garbage fraction over the significant region.
    garbage_fraction_mean: float
    garbage_fraction_min: float
    garbage_fraction_max: float
    #: GC share of total I/O over the significant region.
    gc_io_fraction: float
    #: GC share of total I/O over the whole run (including preamble).
    gc_io_fraction_total: float
    app_io_total: int
    gc_io_total: int
    total_reclaimed_bytes: int
    total_garbage_generated: int
    pointer_overwrites: int
    final_garbage_fraction: float
    final_db_size: int
    final_partitions: int
    #: True when the run performed enough collections to exit the preamble.
    significant: bool


@dataclass
class EventSample:
    """One per-event observation (retained only when series are enabled)."""

    event_index: int
    phase: str
    garbage_fraction: float
    collections: int
    app_io: int
    gc_io: int


class Sampler:
    """Streams per-event and per-collection measurements for one run.

    Args:
        preamble_collections: Collections excluded from significant-region
            means (the paper uses 10 for time-varying results, 10–30
            elsewhere).
        keep_event_series: Retain an :class:`EventSample` per event. Off by
            default — a full OO7 run has tens of thousands of events.
        series_stride: When keeping series, record every N-th event.
    """

    def __init__(
        self,
        preamble_collections: int = 10,
        keep_event_series: bool = False,
        series_stride: int = 1,
    ) -> None:
        if preamble_collections < 0:
            raise ValueError("preamble_collections must be non-negative")
        if series_stride < 1:
            raise ValueError("series_stride must be >= 1")
        self.preamble_collections = preamble_collections
        self.keep_event_series = keep_event_series
        self.series_stride = series_stride

        self.phase = "(setup)"
        self.phase_boundaries: dict[str, int] = {}
        self.event_index = 0
        self.collections = 0
        self._garbage = RunningMean()
        # Whole-run accumulator: the fallback when a run performs fewer
        # collections than the preamble and never becomes "significant".
        self._garbage_all = RunningMean()
        self._significant_started = False
        self._app_io_at_significant = 0
        self._gc_io_at_significant = 0
        self.collection_records: list[CollectionRecord] = []
        self.event_series: list[EventSample] = []
        # Stride countdown: when series are kept, the next sample is due in
        # this many events (equivalent to ``event_index % stride == 0`` but
        # without a modulo per event); None when series are disabled, which
        # makes the hot-path check a single identity test.
        self._series_countdown: Optional[int] = (
            series_stride if keep_event_series else None
        )

    # ------------------------------------------------------------------
    # Hooks called by the simulator
    # ------------------------------------------------------------------

    def on_phase(self, name: str) -> None:
        self.phase = name
        self.phase_boundaries[name] = self.event_index

    def on_event(self, store: ObjectStore, iostats: IOStats) -> None:
        """Sample after each applied database event."""
        self.event_index += 1
        garbage_fraction = store.garbage_fraction
        self._garbage_all.add(garbage_fraction)

        if self._significant_started:
            self._garbage.add(garbage_fraction)
        elif self.collections >= self.preamble_collections:
            self._significant_started = True
            self._app_io_at_significant = iostats.application_total
            self._gc_io_at_significant = iostats.collector_total
            self._garbage.add(garbage_fraction)

        countdown = self._series_countdown
        if countdown is not None:
            countdown -= 1
            if countdown == 0:
                self.event_series.append(
                    EventSample(
                        event_index=self.event_index,
                        phase=self.phase,
                        garbage_fraction=garbage_fraction,
                        collections=self.collections,
                        app_io=iostats.application_total,
                        gc_io=iostats.collector_total,
                    )
                )
                countdown = self.series_stride
            self._series_countdown = countdown

    def on_collection(
        self,
        result: CollectionResult,
        store: ObjectStore,
        interval_next: float,
        estimated_garbage_bytes: Optional[float],
        target_garbage_fraction: Optional[float],
    ) -> None:
        """Record the outcome of a collection (after the policy's decision)."""
        self.collections += 1
        db_size = store.db_size
        estimated_fraction = None
        if estimated_garbage_bytes is not None and db_size > 0:
            estimated_fraction = estimated_garbage_bytes / db_size
        self.collection_records.append(
            CollectionRecord(
                number=result.collection_number,
                phase=self.phase,
                event_index=self.event_index,
                overwrite_clock=result.overwrite_clock,
                partition=result.partition,
                reclaimed_bytes=result.reclaimed_bytes,
                live_bytes=result.live_bytes,
                gc_io=result.gc_io,
                interval_next=interval_next,
                actual_garbage_fraction=store.garbage_fraction,
                estimated_garbage_fraction=estimated_fraction,
                target_garbage_fraction=target_garbage_fraction,
                db_size=db_size,
                pending_overwrites=sum(
                    p.pointer_overwrites for p in store.partitions
                ),
                partition_count=store.partition_count,
            )
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def summary(self, store: ObjectStore, iostats: IOStats) -> SimulationSummary:
        significant = self._significant_started
        if significant:
            app_io = iostats.application_total - self._app_io_at_significant
            gc_io = iostats.collector_total - self._gc_io_at_significant
        else:
            app_io = iostats.application_total
            gc_io = iostats.collector_total
        region_total = app_io + gc_io
        gc_fraction = gc_io / region_total if region_total > 0 else 0.0
        garbage = self._garbage if significant else self._garbage_all
        return SimulationSummary(
            events=self.event_index,
            collections=self.collections,
            preamble_collections=self.preamble_collections,
            garbage_fraction_mean=garbage.mean,
            garbage_fraction_min=garbage.minimum if garbage.count else 0.0,
            garbage_fraction_max=garbage.maximum if garbage.count else 0.0,
            gc_io_fraction=gc_fraction,
            gc_io_fraction_total=iostats.collector_fraction,
            app_io_total=iostats.application_total,
            gc_io_total=iostats.collector_total,
            total_reclaimed_bytes=store.garbage.total_collected,
            total_garbage_generated=store.garbage.total_generated,
            pointer_overwrites=store.pointer_overwrites,
            final_garbage_fraction=store.garbage_fraction,
            final_db_size=store.db_size,
            final_partitions=store.partition_count,
            significant=significant,
        )
