"""Closed-form steady-state models of collection-rate behaviour.

These back-of-the-envelope models predict what the simulator measures, and
are validated against it in the test suite. They make the assumptions
explicit so the simulator's deviations are interpretable:

* Garbage is created at a constant rate of ``gpo`` bytes per pointer
  overwrite (the workload constant of §2.1 — about 140 B/overwrite for our
  OO7 instance).
* A partitioned collection reclaims only the victim partition's garbage. In
  equilibrium each collection must reclaim what accumulated since the last
  one, so the standing garbage pool adjusts until the *selected* victim
  holds that much.
* The selection policy finds a victim holding ``selection_skew`` times the
  per-partition average garbage (UPDATEDPOINTER hunts above-average
  victims, so its skew is > 1; random selection has skew ≈ 1).

The models are intentionally simple — factor-of-two agreement with the
simulator is the goal, not decimal places.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default selection skew for UPDATEDPOINTER (measured on OO7 Small').
DEFAULT_SELECTION_SKEW = 2.0


@dataclass(frozen=True)
class WorkloadModel:
    """The constants a steady-state prediction needs.

    Attributes:
        garbage_per_overwrite: Bytes of garbage created per pointer
            overwrite (``gpo``).
        db_size: Database size in bytes (the percentage denominator).
        partitions: Number of allocated partitions.
        selection_skew: Victim garbage relative to the per-partition mean.
    """

    garbage_per_overwrite: float
    db_size: float
    partitions: int
    selection_skew: float = DEFAULT_SELECTION_SKEW

    def __post_init__(self) -> None:
        if self.garbage_per_overwrite < 0:
            raise ValueError("garbage_per_overwrite must be non-negative")
        if self.db_size <= 0:
            raise ValueError("db_size must be positive")
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.selection_skew <= 0:
            raise ValueError("selection_skew must be positive")


def fixed_rate_yield(model: WorkloadModel, rate: float) -> float:
    """Equilibrium bytes reclaimed per collection at a fixed rate.

    In steady state a collection must reclaim what one interval creates:
    ``rate × gpo``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    return rate * model.garbage_per_overwrite


def fixed_rate_garbage_fraction(model: WorkloadModel, rate: float) -> float:
    """Equilibrium mean garbage fraction under a fixed collection rate.

    The victim must hold one interval's garbage, the victim holds
    ``skew / partitions`` of the pool, so the pool is
    ``rate × gpo × partitions / skew`` — plus half an interval's production
    for the sawtooth mean.
    """
    pool = fixed_rate_yield(model, rate) * model.partitions / model.selection_skew
    sawtooth = fixed_rate_yield(model, rate) / 2.0
    return min(1.0, (pool + sawtooth) / model.db_size)


def saga_interval(model: WorkloadModel, mean_yield: float) -> float:
    """Equilibrium SAGA interval: replace what a collection reclaims.

    At the target level SAGA waits exactly until ``CurrColl`` new garbage
    exists: ``Δt = CurrColl / gpo`` (§2.3 with ``GarbDiff = 0``).
    """
    if mean_yield < 0:
        raise ValueError("mean_yield must be non-negative")
    if model.garbage_per_overwrite == 0:
        return float("inf")
    return mean_yield / model.garbage_per_overwrite


def saga_sawtooth_mean(target_fraction: float, mean_yield: float, db_size: float) -> float:
    """Expected event-sampled mean garbage fraction under SAGA.

    SAGA drives garbage down to the target right after each collection and
    lets it climb by one yield before the next, so the sampled mean sits
    half a yield above the target.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ValueError("target_fraction must be in (0, 1)")
    return target_fraction + (mean_yield / 2.0) / db_size


def saio_interval(gc_io_per_collection: float, io_fraction: float) -> float:
    """Equilibrium SAIO interval (§2.2 with no history).

    ``ΔAppIO = GCIO × (1 - f) / f`` — the application I/O that makes one
    collection's I/O exactly an ``f`` share.
    """
    if gc_io_per_collection <= 0:
        raise ValueError("gc_io_per_collection must be positive")
    if not 0.0 < io_fraction < 1.0:
        raise ValueError("io_fraction must be in (0, 1)")
    return gc_io_per_collection * (1.0 - io_fraction) / io_fraction


def expected_collections(total_overwrites: float, rate: float) -> float:
    """Collections a fixed-rate policy performs over a run."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return total_overwrites / rate
