"""Analytical models validated against the simulator."""

from repro.analysis.cost_model import (
    CollectionCostBreakdown,
    predict_collection_cost,
)
from repro.analysis.steady_state import (
    DEFAULT_SELECTION_SKEW,
    WorkloadModel,
    expected_collections,
    fixed_rate_garbage_fraction,
    fixed_rate_yield,
    saga_interval,
    saga_sawtooth_mean,
    saio_interval,
)

__all__ = [
    "CollectionCostBreakdown",
    "DEFAULT_SELECTION_SKEW",
    "WorkloadModel",
    "expected_collections",
    "fixed_rate_garbage_fraction",
    "fixed_rate_yield",
    "predict_collection_cost",
    "saga_interval",
    "saga_sawtooth_mean",
    "saio_interval",
]
