"""Analytical model of per-collection I/O cost.

SAIO's central assumption (§2.2) is that successive collections cost about
the same number of I/O operations. This model makes the cost structure
explicit — and the tests validate it *exactly* against the collector's
accounting, which is what justifies the assumption on our substrate:

    GC reads  = pages(victim's used extent) + |external referrer pages|
    GC writes = dirty buffered victim pages                (stale-image flush)
              + ceil(live bytes / page size)               (compacted survivors)
              + |external referrer pages|                  (pointer fix-ups)

Only the fix-up and survivor terms vary much between collections on the
OO7 workload, which is why SAIO's constant-cost assumption holds well
there (Figure 4's accuracy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.heap import ObjectStore
from repro.storage.partition import PartitionId


@dataclass(frozen=True)
class CollectionCostBreakdown:
    """Predicted I/O components of collecting one partition."""

    partition_read_pages: int
    survivor_write_pages: int
    fixup_pages: int
    dirty_writeback_pages: int

    @property
    def reads(self) -> int:
        return self.partition_read_pages + self.fixup_pages

    @property
    def writes(self) -> int:
        return (
            self.dirty_writeback_pages
            + self.survivor_write_pages
            + self.fixup_pages
        )

    @property
    def total(self) -> int:
        return self.reads + self.writes


def predict_collection_cost(
    store: ObjectStore, pid: PartitionId
) -> CollectionCostBreakdown:
    """Predict the exact I/O cost of collecting partition ``pid`` right now.

    Uses the partition's used extent, its *partition-reachable* byte total
    (the same conservative liveness the collector computes — survivors
    include floating garbage pinned by external references), its remembered
    set's referrer pages, and the buffer pool's dirty pages for the
    partition.
    """
    partition = store.partitions[pid]
    page_size = store.config.page_size

    # Survivors: intra-partition closure from the conservative roots —
    # exactly the collector's Cheney trace, without moving anything.
    reached: set = set(store.partition_roots(pid))
    stack = list(reached)
    while stack:
        oid = stack.pop()
        for target in store.intra_partition_targets(oid, pid):
            if target not in reached:
                reached.add(target)
                stack.append(target)
    live_bytes = sum(store.objects[oid].size for oid in reached)
    dirty = sum(
        1
        for page in store.buffer.resident_pages()
        if page[0] == pid and store.buffer.is_dirty(page)
    )
    return CollectionCostBreakdown(
        partition_read_pages=partition.used_pages(page_size),
        survivor_write_pages=math.ceil(live_bytes / page_size) if live_bytes else 0,
        fixup_pages=len(store.external_source_pages(pid)),
        dirty_writeback_pages=dirty,
    )
