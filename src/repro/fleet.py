"""``repro fleet`` — sweep (grammar × tenants × seeds × policies) grids.

The fleet driver is the front door to the grammar/tenant subsystem
(:mod:`repro.workload.grammar`, :mod:`repro.workload.tenants`): it builds a
grid of :class:`~repro.sim.spec.ExperimentSpec` cells — one per (policy,
scenario) pair, swept over the seed list — and fans the whole grid out
through the parallel engine with the result cache, the compiled-trace
cache / shared-memory arena, and telemetry, exactly like the named paper
experiments. Reports are **byte-identical at any ``--jobs``** (timing and
cache accounting go to stderr only).

Scenarios come from either

* ``--profiles`` — bundled tenant profiles interleaved into one
  multi-tenant trace (``--shard`` runs each tenant on its own heap
  instead), or
* ``--config FILE`` — a JSON/TOML grammar :class:`WorkloadConfig` or a
  JSON :class:`TenantMixConfig` (detected by its ``tenants`` key).

Policies are compact ``kind:value`` strings (see :func:`parse_policy`).

Examples::

    python -m repro fleet --profiles oltp-churn bulk-load \
        --seeds 0 1 --policies fixed:60 saga:0.25 --telemetry tel/
    python -m repro fleet --config scenario.toml --policies saio:0.1
    python -m repro fleet --profiles oltp-churn read-browse --shard

``--expect-all-cached`` exits non-zero unless every run was answered from
the result cache — CI uses it to prove that a repeated grid is free.
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import io
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.gc.learned import ModelError, model_spec, parse_model_spec
from repro.gc.parallel import COLLECTION_MODES
from repro.sim.engine import run_experiment_batch
from repro.sim.metrics import SimulationSummary
from repro.sim.report import format_percent, format_table
from repro.sim.runner import AggregateResult
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig
from repro.workload.grammar import GrammarError, WorkloadConfig
from repro.workload.tenants import (
    TENANT_PROFILES,
    TenantMixConfig,
    tenant_mix,
)

#: Store geometry for fleet cells: smaller than the paper's so the bundled
#: profiles (hundreds of operations at default scale) still trigger
#: collections. Override via --pages/--partition-pages/--buffer-pages.
DEFAULT_PAGE_SIZE = 2048
DEFAULT_PARTITION_PAGES = 8
DEFAULT_BUFFER_PAGES = 8

_POLICY_FORMS = (
    "fixed:<overwrites_per_collection>",
    "allocation:<bytes_per_collection>",
    "saio:<io_fraction>",
    "saga:<garbage_fraction>[:<estimator>]",
)


def parse_policy(text: str) -> PolicySpec:
    """Parse a compact ``kind:value`` policy string into a :class:`PolicySpec`.

    Forms: ``fixed:60``, ``allocation:24576``, ``saio:0.1``,
    ``saga:0.25`` / ``saga:0.25:cgs-hb``. The saga estimator accepts any
    registered estimator name or ``learned:<model.json>`` (only the first
    colon splits, so model paths pass through intact).

    Raises:
        ValueError: on an unknown kind or malformed value, listing the
            accepted forms.
    """
    kind, _, rest = text.partition(":")
    try:
        if kind == "fixed":
            return PolicySpec("fixed", {"overwrites_per_collection": float(rest)})
        if kind == "allocation":
            return PolicySpec("allocation", {"bytes_per_collection": float(rest)})
        if kind == "saio":
            return PolicySpec("saio", {"io_fraction": float(rest)})
        if kind == "saga":
            fraction, _, estimator = rest.partition(":")
            kwargs: dict = {"garbage_fraction": float(fraction)}
            if estimator:
                kwargs["estimator"] = estimator
            return PolicySpec("saga", kwargs)
    except ValueError:
        pass  # malformed numeric value — report with the accepted forms
    raise ValueError(
        f"cannot parse policy {text!r}; accepted forms: "
        + ", ".join(_POLICY_FORMS)
    )


def resolve_estimators(
    policies: Sequence[PolicySpec], default: Optional[str] = None
) -> list[PolicySpec]:
    """Fill in the ``--estimator`` default and content-pin learned models.

    A saga cell naming ``learned:<path>`` without a hash pin is expanded
    to ``learned:<path>@<hash12>`` by reading the artifact — the result
    cache then fingerprints the model's *content*, so retraining at the
    same path can never be answered by stale cached results.

    Raises:
        ModelError: when a named model artifact is missing or corrupt.
    """
    resolved = []
    for policy in policies:
        if policy.kind == "saga":
            kwargs = dict(policy.kwargs)
            estimator = kwargs.get("estimator", default)
            if isinstance(estimator, str):
                if estimator.startswith("learned:"):
                    path, digest = parse_model_spec(estimator)
                    if digest is None:
                        estimator = model_spec(path)
                kwargs["estimator"] = estimator
            policy = PolicySpec("saga", kwargs)
        resolved.append(policy)
    return resolved


def load_scenario(path: Path) -> "WorkloadConfig | TenantMixConfig":
    """Load a scenario file: grammar config (JSON/TOML) or tenant mix (JSON)."""
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        return WorkloadConfig.from_toml(text)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GrammarError(f"invalid JSON scenario {path}: {exc}") from None
    if isinstance(payload, dict) and "tenants" in payload:
        return TenantMixConfig.from_dict(payload)
    return WorkloadConfig.from_dict(payload)


def build_grid(
    scenario: "WorkloadConfig | TenantMixConfig",
    policies: Sequence[PolicySpec],
    *,
    shard: bool = False,
    sim: Optional[SimulationConfig] = None,
) -> list[ExperimentSpec]:
    """The grid: one :class:`ExperimentSpec` cell per (scenario, policy).

    An interleaved tenant mix is one scenario; ``--shard`` expands the mix
    into one scenario per tenant (its grammar config on its own heap).
    Cells are plain declarative specs, so the engine caches, fingerprints
    and fans them out exactly like the paper experiments.
    """
    if sim is None:
        sim = _default_sim_config()
    if isinstance(scenario, TenantMixConfig):
        if shard:
            workloads = [
                (f"{scenario.name}/{tenant.name}",
                 WorkloadSpec("grammar", {"config": tenant.config}))
                for tenant in scenario.tenants
            ]
        else:
            workloads = [
                (scenario.name, WorkloadSpec("tenant-mix", {"config": scenario}))
            ]
    else:
        if shard:
            raise GrammarError("--shard needs a tenant mix, not a single workload")
        workloads = [(scenario.name, WorkloadSpec("grammar", {"config": scenario}))]

    return [
        ExperimentSpec(
            policy=policy,
            workload=workload,
            sim=sim,
            label=f"{name} × {_policy_label(policy)}",
        )
        for name, workload in workloads
        for policy in policies
    ]


def _policy_label(policy: PolicySpec) -> str:
    values = ":".join(str(v) for v in policy.kwargs.values())
    return f"{policy.kind}:{values}" if values else policy.kind


def _default_sim_config(
    page_size: int = DEFAULT_PAGE_SIZE,
    partition_pages: int = DEFAULT_PARTITION_PAGES,
    buffer_pages: int = DEFAULT_BUFFER_PAGES,
    preamble: int = 0,
    replay: str = "auto",
    collection: str = "serial",
    gc_workers: int = 1,
) -> SimulationConfig:
    return SimulationConfig(
        store=StoreConfig(
            page_size=page_size,
            partition_pages=partition_pages,
            buffer_pages=buffer_pages,
        ),
        preamble_collections=preamble,
        replay=replay,
        collection=collection,
        gc_workers=gc_workers,
    )


def format_fleet_report(
    specs: Sequence[ExperimentSpec],
    results: Sequence[AggregateResult],
    seeds: Sequence[int],
    title: str = "Fleet sweep",
) -> str:
    """Deterministic grid report (identical at any ``--jobs``)."""
    rows = []
    for spec, result in zip(specs, results):
        rows.append(
            [
                spec.label,
                result.runs,
                f"{result.collections.mean:.1f}",
                format_percent(result.gc_io_fraction.mean),
                format_percent(result.garbage_fraction.mean),
                f"{result.total_reclaimed.mean / 1024:.0f}",
                len(result.failures),
            ]
        )
    table = format_table(
        ["cell", "runs", "collections", "gc io", "garbage", "reclaimed KB",
         "failed"],
        rows,
        title=title,
    )
    seed_line = f"seeds: {' '.join(str(s) for s in seeds)}"
    return f"{table}\n{seed_line}"


def format_summary_csv(
    specs: Sequence[ExperimentSpec],
    results: Sequence[AggregateResult],
    seeds: Sequence[int],
) -> str:
    """Per-run outcome table: one CSV row per (cell, seed).

    Every :class:`~repro.sim.metrics.SimulationSummary` field of every
    successful run, keyed by cell label, policy and seed — the raw
    time/space outcomes behind the aggregate report, ready for pandas /
    gnuplot. The engine appends summaries in seed order and quarantines
    failed runs into ``result.failures``, so zipping the surviving seeds
    with the summaries is exact; rows are therefore **byte-identical at
    any ``--jobs``**. Failed runs appear with an ``error`` column instead
    of outcome fields.
    """
    fields = [f.name for f in dataclasses.fields(SimulationSummary)]
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["cell", "policy", "seed", "error", *fields])
    for spec, result in zip(specs, results):
        failed = {failure.seed: failure for failure in result.failures}
        survivors = iter(result.summaries)
        for seed in seeds:
            failure = failed.get(seed)
            if failure is not None:
                writer.writerow(
                    [spec.label, _policy_label(spec.policy), seed,
                     failure.error] + [""] * len(fields)
                )
                continue
            summary = next(survivors)
            writer.writerow(
                [spec.label, _policy_label(spec.policy), seed, ""]
                + [getattr(summary, name) for name in fields]
            )
    return out.getvalue()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description=(
            "Sweep a (grammar × tenants × seeds × policies) scenario grid "
            "through the parallel experiment engine."
        ),
    )
    scenario = parser.add_mutually_exclusive_group()
    scenario.add_argument(
        "--profiles",
        nargs="+",
        metavar="NAME",
        default=None,
        help=(
            "bundled tenant profiles to interleave "
            f"(choose from {sorted(TENANT_PROFILES)}; repeats allowed)"
        ),
    )
    scenario.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "scenario file: a grammar WorkloadConfig (.json/.toml) or a "
            "TenantMixConfig (.json with a 'tenants' key)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="operation-count multiplier for bundled profiles (default 0.5)",
    )
    parser.add_argument(
        "--weights",
        nargs="+",
        type=float,
        default=None,
        metavar="W",
        help="interleave weights, one per profile (default: uniform)",
    )
    parser.add_argument(
        "--shard",
        action="store_true",
        help="run each tenant on its own heap instead of interleaving",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=["fixed:20", "saga:0.15"],
        metavar="POLICY",
        help=(
            "policy cells: " + ", ".join(_POLICY_FORMS)
            + " (default: fixed:20 saga:0.15)"
        ),
    )
    parser.add_argument(
        "--estimator",
        default=None,
        metavar="NAME",
        help=(
            "default garbage estimator for saga policies that don't name "
            "one: a registered name (oracle, cgs-cb, cgs-hb, fgs-cb, "
            "fgs-hb) or learned:<model.json>; learned model paths are "
            "content-pinned into result-cache fingerprints automatically"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0, 1],
        help="seed list (default: 0 1)",
    )
    parser.add_argument(
        "--preamble",
        type=int,
        default=0,
        help="cold-start collections excluded from statistics (default 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: one per CPU; 1 = in-process)",
    )
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--trace-cache-dir", type=Path, default=None)
    parser.add_argument("--no-trace-cache", action="store_true")
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="DIR",
        help="write JSON-lines telemetry for every simulated run here",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed run (stderr)",
    )
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument("--run-timeout", type=float, default=None)
    parser.add_argument(
        "--replay",
        choices=("auto", "batched", "scalar"),
        default="auto",
        help=(
            "replay interpreter: auto (batched where eligible), batched, "
            "or scalar — all three produce identical reports; the replay "
            "choice is excluded from result-cache fingerprints"
        ),
    )
    parser.add_argument(
        "--collection",
        choices=COLLECTION_MODES,
        default="serial",
        help=(
            "collection execution mode: serial (trace + reclaim in the "
            "trigger window) or parallel (speculative pre-tracing by "
            "--gc-workers, validated at apply) — both produce identical "
            "reports; excluded from result-cache fingerprints"
        ),
    )
    parser.add_argument(
        "--gc-workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "speculative trace width for --collection parallel "
            "(default 1: inline pre-tracing); reports are byte-identical "
            "at any value"
        ),
    )
    parser.add_argument(
        "--summary-csv",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "write one CSV row of time/space outcomes per (cell, seed) — "
            "byte-identical at any --jobs"
        ),
    )
    parser.add_argument(
        "--expect-all-cached",
        action="store_true",
        help=(
            "exit with status 3 unless every run was answered from the "
            "result cache (CI uses this to assert cache reuse)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--emit-scenario",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "write the resolved scenario config (JSON) and exit without "
            "simulating — the file replays the exact grid via --config"
        ),
    )
    return parser


def _resolve_scenario(args) -> "WorkloadConfig | TenantMixConfig":
    if args.config is not None:
        return load_scenario(args.config)
    profiles = args.profiles or ["oltp-churn", "read-browse"]
    return tenant_mix(profiles, scale=args.scale, weights=args.weights)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cli import _ProgressReporter, _resolve_cache, _resolve_trace_cache

    args = _build_parser().parse_args(
        list(argv) if argv is not None else sys.argv[1:]
    )

    try:
        if args.gc_workers < 1:
            raise ValueError("--gc-workers must be >= 1")
        if args.collection == "serial" and args.gc_workers != 1:
            raise ValueError("--gc-workers requires --collection parallel")
        scenario = _resolve_scenario(args)
        policies = resolve_estimators(
            [parse_policy(text) for text in args.policies],
            default=args.estimator,
        )
        specs = build_grid(
            scenario,
            policies,
            shard=args.shard,
            sim=_default_sim_config(
                preamble=args.preamble,
                replay=args.replay,
                collection=args.collection,
                gc_workers=args.gc_workers,
            ),
        )
    except (GrammarError, ModelError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.emit_scenario is not None:
        args.emit_scenario.write_text(scenario.to_json() + "\n")
        print(f"[scenario written to {args.emit_scenario}]", file=sys.stderr)
        return 0

    reporter = _ProgressReporter(verbose=args.progress)
    started = time.time()
    results = run_experiment_batch(
        specs,
        seeds=args.seeds,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        progress=reporter,
        retries=args.retries,
        run_timeout=args.run_timeout,
        trace_cache=_resolve_trace_cache(args),
        telemetry=args.telemetry,
    )
    elapsed = time.time() - started

    title = "Fleet sweep (sharded)" if args.shard else "Fleet sweep"
    report = format_fleet_report(specs, results, args.seeds, title=title)
    print(report)
    print(
        f"[{len(specs)} cells × {len(args.seeds)} seeds in "
        f"{elapsed:.1f}s{reporter.summary()}]",
        file=sys.stderr,
    )
    if args.out is not None:
        args.out.write_text(report + "\n")
        print(f"[written to {args.out}]", file=sys.stderr)
    if args.summary_csv is not None:
        args.summary_csv.write_text(
            format_summary_csv(specs, results, args.seeds)
        )
        print(f"[per-run summaries in {args.summary_csv}]", file=sys.stderr)
    if args.telemetry is not None:
        print(
            f"[telemetry in {args.telemetry}; inspect with "
            f"'python -m repro metrics {args.telemetry}']",
            file=sys.stderr,
        )

    if any(result.failures for result in results):
        return 1
    if args.expect_all_cached and reporter.misses > 0:
        print(
            f"error: expected every run cached, but {reporter.misses} "
            "simulated",
            file=sys.stderr,
        )
        return 3
    return 0


# ----------------------------------------------------------------------
# Registry demo (the `fleet-demo` experiment)
# ----------------------------------------------------------------------


def run_demo(seeds: Optional[list[int]], engine_kwargs: dict) -> str:
    """A small fixed grid for the experiment registry (`fleet-demo`).

    2 interleaved tenants × 2 policies over the given seeds — enough to
    demonstrate the grammar/tenant/fleet path end-to-end from
    ``repro-experiments`` without a long run.
    """
    scenario = tenant_mix(["oltp-churn", "read-browse"], scale=0.3)
    policies = [parse_policy("fixed:20"), parse_policy("saio:0.1")]
    specs = build_grid(scenario, policies)
    seeds = seeds if seeds else [0, 1]
    engine_kwargs.setdefault("jobs", 1)
    results = run_experiment_batch(specs, seeds=seeds, **engine_kwargs)
    return format_fleet_report(specs, results, seeds, title="Fleet demo grid")


__all__ = [
    "build_grid",
    "format_fleet_report",
    "format_summary_csv",
    "load_scenario",
    "main",
    "parse_policy",
    "resolve_estimators",
    "run_demo",
]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
