"""Convenience builders for OO7 databases.

Most users drive a full application trace through the simulator; these
helpers materialise just the GenDB phase into a store, for tests, examples,
and Table 1 verification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectKind
from repro.events import (
    AccessEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)


def apply_event(store: ObjectStore, event: TraceEvent) -> None:
    """Apply a single trace event to a store (no collection triggering).

    The simulator has its own event dispatch with policy hooks; this helper
    exists for building databases outside a simulation.
    """
    if isinstance(event, CreateEvent):
        store.create(
            size=event.size,
            kind=event.kind,
            pointers=dict(event.pointers),
            oid=event.oid,
        )
    elif isinstance(event, AccessEvent):
        store.access(event.oid)
    elif isinstance(event, UpdateEvent):
        store.update(event.oid)
    elif isinstance(event, PointerWriteEvent):
        store.write_pointer(event.src, event.slot, event.target, dies=event.dies)
    elif isinstance(event, RootEvent):
        store.register_root(event.oid)
    elif isinstance(event, (PhaseMarkerEvent, IdleEvent)):
        pass
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown trace event {event!r}")


@dataclass
class BuiltDatabase:
    """A freshly generated OO7 database and its generator-side graph."""

    store: ObjectStore
    graph: Oo7Graph
    config: OO7Config

    def kind_counts(self) -> dict[ObjectKind, int]:
        """Object counts by kind (for Table 1 verification)."""
        counts: dict[ObjectKind, int] = {}
        for obj in self.store.objects.values():
            counts[obj.kind] = counts.get(obj.kind, 0) + 1
        return counts

    def average_object_size(self) -> float:
        if not self.store.objects:
            return 0.0
        total = sum(obj.size for obj in self.store.objects.values())
        return total / len(self.store.objects)

    def atomic_part_in_degree(self) -> float:
        """Mean number of pointers targeting each atomic part.

        The paper quotes "an approximate average connectivity of four (i.e.,
        each object has four pointers pointing to it)" for connectivity 3:
        one composite reference plus ``NumConnPerAtomic`` incoming
        connections.
        """
        parts = [o for o in self.store.objects.values() if o.kind == ObjectKind.ATOMIC_PART]
        if not parts:
            return 0.0
        part_oids = {p.oid for p in parts}
        in_degree = dict.fromkeys(part_oids, 0)
        for obj in self.store.objects.values():
            for target in obj.targets():
                if target in in_degree:
                    in_degree[target] += 1
        return sum(in_degree.values()) / len(parts)


def build_database(
    config: OO7Config,
    store_config: StoreConfig | None = None,
    seed: int | None = None,
) -> BuiltDatabase:
    """Run GenDB into a fresh store and return it with its logical graph."""
    store = ObjectStore(store_config)
    graph = Oo7Graph(config, rng=random.Random(config.seed if seed is None else seed))
    for event in graph.generate():
        apply_event(store, event)
    return BuiltDatabase(store=store, graph=graph, config=config)
