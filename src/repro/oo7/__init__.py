"""OO7 benchmark database: parameters, logical schema graph, builders."""

from repro.oo7.builder import BuiltDatabase, apply_event, build_database
from repro.oo7.config import SMALL, SMALL_PRIME, TINY, OO7Config
from repro.oo7.describe import describe_phases, describe_structure
from repro.oo7.schema import (
    AssemblyNode,
    AtomicPartNode,
    CompositeNode,
    ConnectionNode,
    ModuleNode,
    Oo7Graph,
)

__all__ = [
    "AssemblyNode",
    "AtomicPartNode",
    "BuiltDatabase",
    "CompositeNode",
    "ConnectionNode",
    "ModuleNode",
    "OO7Config",
    "Oo7Graph",
    "SMALL",
    "SMALL_PRIME",
    "TINY",
    "apply_event",
    "build_database",
    "describe_phases",
    "describe_structure",
]
