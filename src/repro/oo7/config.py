"""OO7 benchmark database parameters (Table 1 of the paper, after [CDN93]).

The paper measures a ``Small'`` variant of the OO7 Small database: identical
except for 150 composite parts per module (instead of 500) and 6 assembly
levels (instead of 7), keeping simulation turnaround manageable. Both
parameter sets are provided, plus a ``Tiny`` set used by this repository's
test suite.

Object byte sizes are a reproduction choice (the paper never lists per-class
layouts): they are picked so the *emergent* workload constants the policies
actually observe — garbage created per pointer overwrite (§2.1 reports about
1 KB per 6 overwrites, i.e. ~170 B/overwrite; ours lands near 140) and
atomic-part in-degree (connectivity + 1) — match the paper. See DESIGN.md
for the substitution note.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OO7Config:
    """Parameters of an OO7 database instance.

    The first block mirrors Table 1; the second block gives object sizes in
    bytes; ``seed`` controls all randomised structure (connection targets,
    assembly-to-composite wiring).
    """

    # Table 1 parameters.
    num_atomic_per_comp: int = 20
    num_conn_per_atomic: int = 3
    document_size: int = 2000
    manual_size: int = 100 * 1024
    num_comp_per_module: int = 150
    num_assm_per_assm: int = 3
    num_assm_levels: int = 6
    num_comp_per_assm: int = 3
    num_modules: int = 1

    # Object sizes (reproduction choice, see module docstring).
    atomic_part_size: int = 200
    connection_size: int = 120
    composite_part_size: int = 160
    assembly_size: int = 96
    module_size: int = 80

    seed: int = 0

    def __post_init__(self) -> None:
        positive_fields = (
            "num_atomic_per_comp",
            "num_conn_per_atomic",
            "document_size",
            "manual_size",
            "num_comp_per_module",
            "num_assm_per_assm",
            "num_assm_levels",
            "num_comp_per_assm",
            "num_modules",
            "atomic_part_size",
            "connection_size",
            "composite_part_size",
            "assembly_size",
            "module_size",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.num_atomic_per_comp < 2:
            raise ValueError("need at least 2 atomic parts per composite (root + deletable)")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def base_assemblies_per_module(self) -> int:
        """Leaf assemblies: fan-out^(levels-1)."""
        return self.num_assm_per_assm ** (self.num_assm_levels - 1)

    @property
    def assemblies_per_module(self) -> int:
        """All assemblies in the (complete) assembly tree."""
        total = 0
        width = 1
        for _level in range(self.num_assm_levels):
            total += width
            width *= self.num_assm_per_assm
        return total

    @property
    def atomic_parts_per_module(self) -> int:
        return self.num_comp_per_module * self.num_atomic_per_comp

    @property
    def connections_per_module(self) -> int:
        return self.atomic_parts_per_module * self.num_conn_per_atomic

    @property
    def expected_bytes_per_module(self) -> int:
        """Logical object bytes of one freshly generated module."""
        return (
            self.module_size
            + self.manual_size
            + self.assemblies_per_module * self.assembly_size
            + self.num_comp_per_module
            * (self.composite_part_size + self.document_size)
            + self.atomic_parts_per_module * self.atomic_part_size
            + self.connections_per_module * self.connection_size
        )

    @property
    def expected_object_count(self) -> int:
        """Total objects in a freshly generated database."""
        per_module = (
            2  # module + manual
            + self.assemblies_per_module
            + 2 * self.num_comp_per_module  # composite + document
            + self.atomic_parts_per_module
            + self.connections_per_module
        )
        return self.num_modules * per_module

    def with_connectivity(self, num_conn_per_atomic: int) -> "OO7Config":
        """Copy of this config at a different NumConnPerAtomic (Figure 8)."""
        return replace(self, num_conn_per_atomic=num_conn_per_atomic)

    def with_seed(self, seed: int) -> "OO7Config":
        """Copy of this config with a different structure seed."""
        return replace(self, seed=seed)


#: The paper's measured database (Table 1, column "Small'").
SMALL_PRIME = OO7Config()

#: The original OO7 Small database (Table 1, column "Small") [CDN93, YNY94].
SMALL = OO7Config(num_comp_per_module=500, num_assm_levels=7)

#: A reduced configuration for fast unit and integration tests.
TINY = OO7Config(
    num_atomic_per_comp=6,
    num_comp_per_module=12,
    num_assm_levels=3,
    manual_size=8 * 1024,
    document_size=500,
)
