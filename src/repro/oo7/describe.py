"""Textual renderings of the paper's descriptive figures.

* :func:`describe_phases` — Figure 2, the application phase sequence;
* :func:`describe_structure` — Figure 3, the OO7 database structure, with
  counts from an actual configuration (and optionally placement statistics
  from a generated database).
"""

from __future__ import annotations

from typing import Optional

from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore


def describe_phases() -> str:
    """Figure 2: the phases of the OO7 test application."""
    return "\n".join(
        [
            "Figure 2: Phases of the OO7 Test Application",
            "",
            "  +-------+    +--------+    +----------+    +--------+",
            "  | GenDB |--->| Reorg1 |--->| Traverse |--->| Reorg2 |",
            "  +-------+    +--------+    +----------+    +--------+",
            "",
            "  GenDB    generate the initial database (allocation only,",
            "           no garbage is created)",
            "  Reorg1   delete half the atomic parts, reinsert them",
            "           clustered by composite part",
            "  Traverse read-only depth-first traversal over all atomic",
            "           parts (no pointer overwrites: overwrite-time",
            "           stands still)",
            "  Reorg2   delete half the atomic parts again, reinsert them",
            "           interleaved across composites — breaking each",
            "           composite's clustering",
        ]
    )


def describe_structure(
    config: OO7Config,
    graph: Optional[Oo7Graph] = None,
    store: Optional[ObjectStore] = None,
) -> str:
    """Figure 3: the OO7 database structure, with configured counts.

    When a generated ``graph`` (and optionally its ``store``) is supplied,
    adds measured population and placement statistics.
    """
    lines = [
        "Figure 3: Structure of the OO7 Database",
        "",
        "  Module ──┬── Manual",
        "           └── Assembly (root)",
        f"                 └── … {config.num_assm_levels} levels, fan-out "
        f"{config.num_assm_per_assm} …",
        f"                       └── Base assemblies ({config.base_assemblies_per_module})",
        f"                             └── {config.num_comp_per_assm} composite parts each",
        "",
        f"  CompositePart ({config.num_comp_per_module}) ──┬── Document "
        f"({config.document_size} B)",
        f"                        └── {config.num_atomic_per_comp} atomic parts",
        "",
        f"  AtomicPart ──── {config.num_conn_per_atomic} connections to other parts",
        "                  of the same composite (in-degree ≈ "
        f"{config.num_conn_per_atomic + 1}: composite + connections)",
        "",
        "  Deleting an atomic part overwrites the composite's pointer and",
        "  retargets incoming connections; the part and its outgoing",
        "  connection objects become garbage as one detached cluster.",
        "",
        f"  Expected population: {config.expected_object_count:,} objects, "
        f"{config.expected_bytes_per_module / 1e6:.2f} MB",
    ]
    if graph is not None:
        parts = graph.alive_atomic_parts()
        lines.append("")
        lines.append(
            f"  Generated: {len(graph.composites)} composites, "
            f"{len(parts)} atomic parts, "
            f"{graph.alive_connection_count()} connections"
        )
        if store is not None:
            lines.append(
                f"  Stored in {store.partition_count} partitions of "
                f"{store.config.partition_size // 1024} KB "
                f"({store.db_size / 1e6:.2f} MB allocated)"
            )
    return "\n".join(lines)
