"""Logical OO7 database graph maintained by the workload generator.

The generator keeps its own structural mirror of the database (assembly
hierarchy, composite parts, atomic parts, connections) so it can

* emit well-formed trace events in an order that never leaves a live object
  unreachable for more than a moment (a collection can fire between any two
  events), and
* compute the ``dies`` annotation of every disconnection *constructively* —
  it performs each disconnection deliberately and knows the local structure,
  so no global reachability scan is needed.

Structure (Figure 3): a module roots an assembly tree; base (leaf) assemblies
reference composite parts; each composite part owns a document and
``NumAtomicPerComp`` atomic parts; each atomic part owns
``NumConnPerAtomic`` connection objects pointing at other atomic parts of the
same composite. Connections carry no back-pointer to their source — the
source owns them — so death cascades are acyclic and partitioned collection
can always reclaim them (possibly over several collections, as floating
garbage drains).

All node classes use identity equality (``eq=False``): the graph is cyclic
through back-references and nodes are mutable bookkeeping records, not
values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.oo7.config import OO7Config
from repro.storage.object_model import ObjectId, ObjectKind
from repro.events import (
    CreateEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
)


@dataclass(eq=False)
class ConnectionNode:
    """A connection object: owned by ``src`` (slot ``slot``), targets ``dst``."""

    oid: ObjectId
    src: "AtomicPartNode"
    dst: "AtomicPartNode"
    slot: str
    dead: bool = False


@dataclass(eq=False)
class AtomicPartNode:
    """An atomic part: owned by its composite via slot ``slot``."""

    oid: ObjectId
    composite: "CompositeNode"
    slot: str
    is_root_part: bool = False
    out_conns: list[ConnectionNode] = field(default_factory=list)
    in_conns: list[ConnectionNode] = field(default_factory=list)
    next_conn_slot: int = 0
    dead: bool = False

    def alive_out_conns(self) -> list[ConnectionNode]:
        return [c for c in self.out_conns if not c.dead]

    def alive_in_conns(self) -> list[ConnectionNode]:
        return [c for c in self.in_conns if not c.dead]


@dataclass(eq=False)
class CompositeNode:
    """A composite part: owns a document and a set of atomic parts."""

    oid: ObjectId
    index: int
    doc_oid: ObjectId
    parts: list[AtomicPartNode] = field(default_factory=list)
    free_part_slots: list[str] = field(default_factory=list)
    next_part_slot: int = 0

    def alive_parts(self) -> list[AtomicPartNode]:
        return [p for p in self.parts if not p.dead]

    def deletable_parts(self) -> list[AtomicPartNode]:
        """Alive parts that may be deleted (the root part always stays)."""
        return [p for p in self.parts if not p.dead and not p.is_root_part]

    @property
    def root_part(self) -> AtomicPartNode:
        for part in self.parts:
            if part.is_root_part:
                return part
        raise RuntimeError(f"composite {self.oid} has no root part")


@dataclass(eq=False)
class AssemblyNode:
    """One node of the assembly hierarchy."""

    oid: ObjectId
    level: int  # 0 = root assembly
    children: list["AssemblyNode"] = field(default_factory=list)
    composites: list[CompositeNode] = field(default_factory=list)


@dataclass(eq=False)
class ModuleNode:
    """One module: a database root with its manual and assembly tree."""

    oid: ObjectId
    manual_oid: ObjectId
    root_assembly: Optional[AssemblyNode] = None
    assemblies: list[AssemblyNode] = field(default_factory=list)
    composites: list[CompositeNode] = field(default_factory=list)

    def base_assemblies(self) -> list[AssemblyNode]:
        """This module's leaf assemblies, in creation order."""
        if not self.assemblies:
            return []
        leaf_level = max(a.level for a in self.assemblies)
        return [a for a in self.assemblies if a.level == leaf_level]


class Oo7Graph:
    """Builds and mutates an OO7 database, emitting trace events.

    Args:
        config: Database parameters.
        rng: Random source for all structural choices (connection targets,
            assembly wiring, part placement in slots). Supplying the RNG lets
            an application share one seed across generation and reorganisation
            phases.
    """

    def __init__(self, config: OO7Config, rng: Optional[random.Random] = None) -> None:
        self.config = config
        self.rng = rng or random.Random(config.seed)
        self._next_oid: ObjectId = 1
        self.modules: list[ModuleNode] = []
        self.assemblies: list[AssemblyNode] = []
        self.composites: list[CompositeNode] = []
        #: Object sizes by oid, for trace statistics and tests.
        self.object_sizes: dict[ObjectId, int] = {}

    # Convenience accessors for the (very common) single-module case.

    @property
    def module_oid(self) -> Optional[ObjectId]:
        return self.modules[0].oid if self.modules else None

    @property
    def manual_oid(self) -> Optional[ObjectId]:
        return self.modules[0].manual_oid if self.modules else None

    @property
    def root_assembly(self) -> Optional[AssemblyNode]:
        return self.modules[0].root_assembly if self.modules else None

    # ------------------------------------------------------------------
    # Identity and bookkeeping helpers
    # ------------------------------------------------------------------

    def _new_oid(self, size: int) -> ObjectId:
        oid = self._next_oid
        self._next_oid += 1
        self.object_sizes[oid] = size
        return oid

    def alive_atomic_parts(self) -> list[AtomicPartNode]:
        """All alive atomic parts, in composite order."""
        parts: list[AtomicPartNode] = []
        for composite in self.composites:
            parts.extend(composite.alive_parts())
        return parts

    def alive_connection_count(self) -> int:
        return sum(
            len(part.alive_out_conns())
            for composite in self.composites
            for part in composite.alive_parts()
        )

    # ------------------------------------------------------------------
    # GenDB: initial database generation
    # ------------------------------------------------------------------

    def generate(self) -> Iterator[TraceEvent]:
        """Emit the GenDB event stream, building the logical graph as it goes.

        Ordering is chosen so every created object is referenced from the
        rooted graph within at most two subsequent events (the simulator's
        allocation pinning covers the gap); a collection may therefore fire
        at any point during generation without reclaiming live data.
        """
        for _module_index in range(self.config.num_modules):
            yield from self._generate_module()

    def _generate_module(self) -> Iterator[TraceEvent]:
        cfg = self.config
        # Module (a database root) and its manual.
        module = ModuleNode(
            oid=self._new_oid(cfg.module_size),
            manual_oid=0,  # assigned below
        )
        self.modules.append(module)
        yield CreateEvent(module.oid, cfg.module_size, ObjectKind.MODULE)
        yield RootEvent(module.oid)
        module.manual_oid = self._new_oid(cfg.manual_size)
        yield CreateEvent(module.manual_oid, cfg.manual_size, ObjectKind.MANUAL)
        yield PointerWriteEvent(module.oid, "manual", module.manual_oid)

        yield from self._generate_assembly_tree(module)
        yield from self._generate_composites(module)
        yield from self._wire_extra_assembly_slots(module)

    def _generate_assembly_tree(self, module: ModuleNode) -> Iterator[TraceEvent]:
        cfg = self.config
        root = AssemblyNode(oid=self._new_oid(cfg.assembly_size), level=0)
        module.root_assembly = root
        module.assemblies.append(root)
        self.assemblies.append(root)
        yield CreateEvent(root.oid, cfg.assembly_size, ObjectKind.ASSEMBLY)
        yield PointerWriteEvent(module.oid, "assembly", root.oid)

        frontier = [root]
        for level in range(1, cfg.num_assm_levels):
            next_frontier: list[AssemblyNode] = []
            for parent in frontier:
                for child_index in range(cfg.num_assm_per_assm):
                    child = AssemblyNode(oid=self._new_oid(cfg.assembly_size), level=level)
                    parent.children.append(child)
                    module.assemblies.append(child)
                    self.assemblies.append(child)
                    next_frontier.append(child)
                    yield CreateEvent(child.oid, cfg.assembly_size, ObjectKind.ASSEMBLY)
                    yield PointerWriteEvent(parent.oid, f"sub{child_index}", child.oid)
            frontier = next_frontier

    def base_assemblies(self) -> list[AssemblyNode]:
        """Leaf assemblies across all modules, in creation order."""
        leaf_level = self.config.num_assm_levels - 1
        return [a for a in self.assemblies if a.level == leaf_level]

    def _generate_composites(self, module: ModuleNode) -> Iterator[TraceEvent]:
        """Create a module's composites, linking each into one of the
        module's base assemblies immediately.

        Every composite gets a guaranteed "primary" base-assembly slot (dealt
        round-robin) so none is accidentally unreachable; remaining slots are
        wired randomly afterwards in :meth:`_wire_extra_assembly_slots`.
        """
        cfg = self.config
        bases = module.base_assemblies()
        for index in range(cfg.num_comp_per_module):
            base = bases[index % len(bases)]
            slot = f"comp{len(base.composites)}"

            doc_oid = self._new_oid(cfg.document_size)
            yield CreateEvent(doc_oid, cfg.document_size, ObjectKind.DOCUMENT)
            composite = CompositeNode(
                oid=self._new_oid(cfg.composite_part_size), index=index, doc_oid=doc_oid
            )
            module.composites.append(composite)
            self.composites.append(composite)
            yield CreateEvent(
                composite.oid,
                cfg.composite_part_size,
                ObjectKind.COMPOSITE_PART,
                pointers=(("doc", doc_oid),),
            )
            yield PointerWriteEvent(base.oid, slot, composite.oid)
            base.composites.append(composite)

            yield from self._generate_atomic_parts(composite)

    def _generate_atomic_parts(self, composite: CompositeNode) -> Iterator[TraceEvent]:
        cfg = self.config
        # First all parts (so connection targets exist), then the connections.
        for part_index in range(cfg.num_atomic_per_comp):
            part = self._create_part_node(composite, is_root=(part_index == 0))
            yield from self._emit_part_creation(part)
        parts = composite.alive_parts()
        for position, part in enumerate(parts):
            # One ring connection keeps the conn-graph connected for DFS...
            ring_target = parts[(position + 1) % len(parts)]
            targets = [ring_target]
            # ...plus random same-composite targets for the rest.
            targets.extend(
                self._random_conn_target(part, parts)
                for _ in range(cfg.num_conn_per_atomic - 1)
            )
            for target in targets:
                yield from self._emit_connection(part, target)

    def _random_conn_target(
        self, part: AtomicPartNode, candidates: list[AtomicPartNode]
    ) -> AtomicPartNode:
        """A random connection target in the same composite, never ``part``."""
        while True:
            target = self.rng.choice(candidates)
            if target is not part:
                return target

    def _wire_extra_assembly_slots(self, module: ModuleNode) -> Iterator[TraceEvent]:
        """Fill a module's remaining base-assembly slots with its own
        composites, chosen at random."""
        cfg = self.config
        for base in module.base_assemblies():
            while len(base.composites) < cfg.num_comp_per_assm:
                composite = self.rng.choice(module.composites)
                slot = f"comp{len(base.composites)}"
                yield PointerWriteEvent(base.oid, slot, composite.oid)
                base.composites.append(composite)

    # ------------------------------------------------------------------
    # Part creation (shared by GenDB and the reorganisation phases)
    # ------------------------------------------------------------------

    def _create_part_node(self, composite: CompositeNode, is_root: bool = False) -> AtomicPartNode:
        if composite.free_part_slots:
            slot = composite.free_part_slots.pop()
        else:
            slot = f"part{composite.next_part_slot}"
            composite.next_part_slot += 1
        part = AtomicPartNode(
            oid=self._new_oid(self.config.atomic_part_size),
            composite=composite,
            slot=slot,
            is_root_part=is_root,
        )
        composite.parts.append(part)
        return part

    def _emit_part_creation(self, part: AtomicPartNode) -> Iterator[TraceEvent]:
        yield CreateEvent(
            part.oid,
            self.config.atomic_part_size,
            ObjectKind.ATOMIC_PART,
            pointers=(("partOf", part.composite.oid),),
        )
        yield PointerWriteEvent(part.composite.oid, part.slot, part.oid)

    def _emit_connection(
        self, src: AtomicPartNode, dst: AtomicPartNode
    ) -> Iterator[TraceEvent]:
        conn = ConnectionNode(
            oid=self._new_oid(self.config.connection_size),
            src=src,
            dst=dst,
            slot=f"conn{src.next_conn_slot}",
        )
        src.next_conn_slot += 1
        src.out_conns.append(conn)
        dst.in_conns.append(conn)
        yield CreateEvent(
            conn.oid,
            self.config.connection_size,
            ObjectKind.CONNECTION,
            pointers=(("to", dst.oid),),
        )
        yield PointerWriteEvent(src.oid, conn.slot, conn.oid)

    def insert_part(self, composite: CompositeNode) -> tuple[AtomicPartNode, list[TraceEvent]]:
        """Insert one new atomic part with fresh connections into ``composite``.

        Connection targets are random alive parts of the composite, so later
        insertions may target earlier ones (keeping in-degrees balanced over
        time, as in the OO7 structural-modification operation).

        Insertion also repairs connectivity deficits: a part whose
        connections all died because the composite was churned down to a
        single part (deletion had nothing left to retarget to) gets fresh
        connections once targets exist again.
        """
        candidates = composite.alive_parts()
        part = self._create_part_node(composite)
        events = list(self._emit_part_creation(part))
        for _ in range(self.config.num_conn_per_atomic):
            target = self._random_conn_target(part, candidates)
            events.extend(self._emit_connection(part, target))

        for deficient in candidates:
            repair_targets = [p for p in composite.alive_parts() if p is not deficient]
            if not repair_targets:
                continue
            while len(deficient.alive_out_conns()) < self.config.num_conn_per_atomic:
                target = self._random_conn_target(deficient, repair_targets)
                events.extend(self._emit_connection(deficient, target))
        return part, events

    # ------------------------------------------------------------------
    # Document replacement
    # ------------------------------------------------------------------

    def replace_document(self, composite: CompositeNode) -> list[TraceEvent]:
        """Replace a composite's document with a freshly written one.

        This is §2.1's "a single overwrite may disconnect very large objects
        from the database, such as OO7 document nodes" made concrete: one
        pointer overwrite kills ``DocumentSize`` bytes at a stroke, giving
        the workload a second, much larger garbage-per-overwrite mode than
        atomic-part deletion.
        """
        old_doc = composite.doc_oid
        new_doc = self._new_oid(self.config.document_size)
        composite.doc_oid = new_doc
        return [
            CreateEvent(new_doc, self.config.document_size, ObjectKind.DOCUMENT),
            PointerWriteEvent(composite.oid, "doc", new_doc, dies=(old_doc,)),
        ]

    # ------------------------------------------------------------------
    # Part deletion
    # ------------------------------------------------------------------

    def delete_part(self, part: AtomicPartNode) -> list[TraceEvent]:
        """Delete an atomic part, emitting the disconnection events.

        The deletion first *retargets* every incoming connection: the
        neighbour's connection object survives, but its ``to`` pointer is
        overwritten to another alive part of the composite. Each retargeting
        is one pointer overwrite recorded against the dying part's partition
        — exactly where the garbage is about to appear — and keeps per-part
        out-degree at ``NumConnPerAtomic``, so the database's connection
        population is stationary across repeated reorganisations. Finally
        the composite's slot is cleared — the overwrite that kills the part
        itself together with its outgoing connections (they are reachable
        only through the part). This is how "overwriting the final pointer
        to an object or group of objects actually does create garbage" (§2).
        """
        if part.dead:
            raise ValueError(f"part {part.oid} is already dead")
        if part.is_root_part:
            raise ValueError(f"part {part.oid} is a composite root part and cannot be deleted")

        composite = part.composite
        events: list[TraceEvent] = []
        for conn in part.alive_in_conns():
            source = conn.src
            part.in_conns.remove(conn)
            replacement_targets = [
                p for p in composite.alive_parts() if p is not source and p is not part
            ]
            if replacement_targets:
                target = self.rng.choice(replacement_targets)
                conn.dst = target
                target.in_conns.append(conn)
                events.append(PointerWriteEvent(conn.oid, "to", target.oid))
            else:
                # Degenerate composite: nothing left to point at — the
                # neighbour's connection dies with its target.
                conn.dead = True
                source.out_conns.remove(conn)
                events.append(
                    PointerWriteEvent(source.oid, conn.slot, None, dies=(conn.oid,))
                )

        out_dies = []
        for conn in part.alive_out_conns():
            conn.dead = True
            conn.dst.in_conns.remove(conn)
            out_dies.append(conn.oid)

        events.append(
            PointerWriteEvent(
                composite.oid, part.slot, None, dies=(part.oid, *out_dies)
            )
        )
        part.dead = True
        composite.parts.remove(part)
        composite.free_part_slots.append(part.slot)
        return events
