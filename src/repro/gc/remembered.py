"""Incremental reachability bookkeeping: per-partition remembered sets.

Partitioned collection (§3.1, [CWZ94]) is designed so one partition can be
collected *without* a global scan: the conservative root set of a partition
is (database roots ∩ residents) ∪ (allocation pins ∩ residents) ∪ (targets
of remembered inter-partition references). The store has always maintained
the third component incrementally (:attr:`~repro.storage.partition.
Partition.incoming`); this module adds the rest, so deriving a partition's
collection frontier costs O(partition + boundary) instead of intersecting
global sets against the resident set on every collection:

* **per-partition root membership** — which database roots live in each
  partition, maintained at ``register_root`` / reclamation;
* **per-partition allocation pins** — which unlinked (just-created, not yet
  referenced) objects live in each partition, maintained at ``create`` and
  at the pointer write / root registration that links them;
* **per-partition distinct boundary sources** — for each partition, the
  external objects holding at least one pointer into it, reference-counted
  across *all* their targets. The relocation fix-up pass needs each distinct
  source's pages exactly once, so aggregating per source (instead of the
  per-target source dicts of ``Partition.incoming``) makes that derivation
  linear in the number of distinct sources.

Every index update is O(1) and happens at the existing mutation seams of
:class:`~repro.storage.heap.ObjectStore` (pointer writes, creates, root
registrations, rollback primitives, reclamation) — the simulator's event
handlers never touch the index directly.

**Conservatism caveat** (the paper's stated limitation): remembered-in
references are treated as roots even when the referencing object is itself
garbage in another partition, so *cross-partition garbage cycles* are never
reclaimed by partition collection — under either reachability mode — and
are only recovered by :meth:`~repro.gc.collector.CopyingCollector.
collect_global`'s whole-database marking pass. The oracle garbage
accounting and the estimator/telemetry layers all report against this same
definition of reclaimable garbage.

:func:`full_scan_frontier` is the from-scratch baseline behind
``SimulationConfig(reachability="full")``: it recomputes the identical
frontier by scanning the entire heap per collection (O(heap)), which the
A/B property tests and the ``collection_throughput`` benchmark compare the
incremental path against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.storage.object_model import ObjectId
from repro.storage.partition import PartitionId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.storage.buffer import PageId
    from repro.storage.heap import ObjectStore

#: Shared empty fallbacks so queries on never-touched partitions allocate
#: nothing. Callers must not mutate these.
_EMPTY_SET: frozenset[ObjectId] = frozenset()
_EMPTY_DICT: Mapping[ObjectId, int] = {}


class RememberedSetIndex:
    """Incrementally maintained per-partition collection-frontier state.

    One instance lives on each :class:`~repro.storage.heap.ObjectStore`
    (``store.remembered``) and mirrors three facts the store already tracks
    globally, keyed by partition: root membership, allocation pins, and
    distinct external boundary sources (reference-counted). The store's
    mutators keep it consistent; :mod:`repro.storage.validation` cross-checks
    it against a brute-force heap scan.
    """

    __slots__ = ("_roots", "_pins", "_sources", "edges", "remembers_total", "forgets_total")

    def __init__(self) -> None:
        self._roots: dict[PartitionId, set[ObjectId]] = {}
        self._pins: dict[PartitionId, set[ObjectId]] = {}
        #: Per partition: external source object → count of its pointer
        #: slots currently targeting any resident of the partition.
        self._sources: dict[PartitionId, dict[ObjectId, int]] = {}
        #: Live inter-partition references currently remembered (sum of all
        #: source counts).
        self.edges = 0
        #: Monotone churn counters: boundary-edge additions / removals over
        #: the store's lifetime (the ``gc.remembered.*`` telemetry).
        self.remembers_total = 0
        self.forgets_total = 0

    # ------------------------------------------------------------------
    # Root / pin membership
    # ------------------------------------------------------------------

    def add_root(self, pid: PartitionId, oid: ObjectId) -> None:
        """``oid`` (resident in ``pid``) joined the database root set."""
        roots = self._roots.get(pid)
        if roots is None:
            roots = self._roots[pid] = set()
        roots.add(oid)

    def pin(self, pid: PartitionId, oid: ObjectId) -> None:
        """``oid`` (resident in ``pid``) was created and is not yet linked."""
        pins = self._pins.get(pid)
        if pins is None:
            pins = self._pins[pid] = set()
        pins.add(oid)

    def unpin(self, pid: PartitionId, oid: ObjectId) -> None:
        """``oid`` became referenced (or a root); its allocation pin drops."""
        pins = self._pins.get(pid)
        if pins is not None:
            pins.discard(oid)

    def drop_object(self, pid: PartitionId, oid: ObjectId) -> None:
        """``oid`` left the store (reclaimed or expunged)."""
        roots = self._roots.get(pid)
        if roots is not None:
            roots.discard(oid)
        pins = self._pins.get(pid)
        if pins is not None:
            pins.discard(oid)

    # ------------------------------------------------------------------
    # Boundary sources
    # ------------------------------------------------------------------

    def remember_source(self, pid: PartitionId, src: ObjectId) -> None:
        """One more pointer slot of external ``src`` targets partition ``pid``."""
        sources = self._sources.get(pid)
        if sources is None:
            sources = self._sources[pid] = {}
        sources[src] = sources.get(src, 0) + 1
        self.edges += 1
        self.remembers_total += 1

    def forget_source(self, pid: PartitionId, src: ObjectId) -> None:
        """One remembered slot of ``src`` into ``pid`` was overwritten.

        Callers only invoke this for edges the partition's remembered set
        actually dropped (:meth:`~repro.storage.partition.Partition.forget`
        returns whether it did), so counts never go negative.
        """
        sources = self._sources.get(pid)
        if sources is None:
            return
        count = sources.get(src)
        if count is None:
            return
        if count <= 1:
            del sources[src]
        else:
            sources[src] = count - 1
        self.edges -= 1
        self.forgets_total += 1

    def forget_sources(self, pid: PartitionId, dropped: Mapping[ObjectId, int]) -> None:
        """Bulk removal: a resident of ``pid`` was reclaimed and its whole
        per-target source dict (``Partition.drop_incoming``) went with it."""
        sources = self._sources.get(pid)
        if sources is None:
            return
        for src, count in dropped.items():
            have = sources.get(src)
            if have is None:
                continue
            if have <= count:
                del sources[src]
            else:
                sources[src] = have - count
            self.edges -= count
            self.forgets_total += count

    # ------------------------------------------------------------------
    # Queries (the collector's frontier derivation)
    # ------------------------------------------------------------------

    def roots_in(self, pid: PartitionId) -> set[ObjectId]:
        """Database roots resident in ``pid``. Do not mutate."""
        return self._roots.get(pid, _EMPTY_SET)  # type: ignore[return-value]

    def pins_in(self, pid: PartitionId) -> set[ObjectId]:
        """Allocation-pinned residents of ``pid``. Do not mutate."""
        return self._pins.get(pid, _EMPTY_SET)  # type: ignore[return-value]

    def sources_in(self, pid: PartitionId) -> Mapping[ObjectId, int]:
        """Distinct external sources into ``pid`` → remembered slot count."""
        return self._sources.get(pid, _EMPTY_DICT)

    def stats(self) -> dict[str, int]:
        """Current set sizes and lifetime churn (``gc.remembered.*``)."""
        return {
            "edges": self.edges,
            "sources": sum(len(s) for s in self._sources.values()),
            "roots": sum(len(r) for r in self._roots.values()),
            "pins": sum(len(p) for p in self._pins.values()),
            "remembers_total": self.remembers_total,
            "forgets_total": self.forgets_total,
        }


def full_scan_frontier(
    store: "ObjectStore", pid: PartitionId
) -> tuple[set[ObjectId], set["PageId"]]:
    """From-scratch recomputation of partition ``pid``'s collection frontier.

    Scans the *entire heap* to derive exactly what the incremental path
    reads out of the remembered-set state in O(partition + boundary):

    * the conservative root set — database roots and allocation pins
      resident in ``pid``, plus every resident targeted by a pointer held
      outside the partition;
    * the external fix-up pages — pages of every external object holding at
      least one pointer into ``pid`` (compaction relocates their referents,
      so each needs a read-modify-write).

    This is the ``reachability="full"`` baseline: O(heap) per collection,
    result-identical to ``"remembered"`` (property-tested), and the
    denominator of the ``collection_throughput`` benchmark's speedup.
    """
    partition = store.partitions[pid]
    residents = partition.residents
    roots = store.roots & residents
    roots |= store.unlinked & residents
    page_size = store.config.page_size
    # Int-only reads of the flat placement columns: this scan visits every
    # heap object, so a Placement snapshot per object would dominate it.
    locate = store.placements.locate
    pages: set["PageId"] = set()
    for src, obj in store.objects.items():
        loc = locate(src)
        if loc is None or loc[0] == pid:
            continue
        referenced = False
        for target in obj.targets():
            if target in residents:
                roots.add(target)
                referenced = True
        if referenced:
            src_pid, offset, size = loc
            first = offset // page_size
            last = (offset + size - 1) // page_size
            for index in range(first, last + 1):
                pages.add((src_pid, index))
    return roots, pages
