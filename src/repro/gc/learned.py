"""Learned garbage estimator: online linear regression over FGS/HB features.

The paper's estimators (§2.4) are hand-designed points in a 2×2 design
space; *Learned Garbage Collection* (Cen et al., 2020) shows ML-driven
policies beating exactly this kind of heuristic. This module closes the
telemetry loop: the per-collection GC timeline the observability layer
already emits (:mod:`repro.obs.telemetry`) is oracle-labelled training
data — ``actual_garbage_fraction`` is recorded at every collection — so a
regression can be fitted offline (``python -m repro train``) and deployed
as a drop-in :class:`~repro.core.estimators.GarbageEstimator`.

Three deliberate design constraints:

* **No train/serve skew.** A single :class:`FeatureTracker` derives the
  feature vector from per-collection observables — pointer-overwrite
  clock, bytes reclaimed, survivor bytes, database size — and is driven
  identically by the live estimator (from
  :class:`~repro.gc.collector.CollectionResult` + store) and by the
  telemetry reader (:mod:`repro.obs.features`). Wall-clock fields are
  never features.
* **Determinism.** Training is plain-python SGD with a seeded
  :class:`random.Random` for initialisation and epoch shuffling; the same
  (telemetry records, seed, hyperparameters) always produce a
  byte-identical model artifact, which CI gates on. No numpy required.
* **Content addressing.** A saved model is a versioned JSON artifact with
  an embedded SHA-256 self-hash; the estimator-registry spec form
  ``learned:<path>@<hash-prefix>`` pins the *content*, so experiment
  fingerprints (and therefore the result cache) track what the model is,
  not merely where it lives.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.control import ExponentialMean
from repro.core.estimators import GarbageEstimator
from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore

#: Model artifact schema version; bump on breaking changes.
MODEL_FORMAT = 1

#: Overwrite-clock scale used to keep rate features O(1).
_KILO = 1000.0

#: Feature vector layout, in order. Training rows, model weights and the
#: live estimator all index against this tuple.
FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "reclaimed_ratio",
    "reclaimed_ratio_smooth",
    "gppo_frac",
    "gppo_frac_smooth",
    "overwrite_rate",
    "alloc_frac",
    "survivor_ratio",
    "age_kilo_overwrites",
    "cgs_extrap",
    "fgs_extrap",
    "pending_rate",
)

#: Default EMA history factor for the smoothed features (the paper's h).
DEFAULT_FEATURE_HISTORY = 0.8


class ModelError(Exception):
    """A learned-model artifact could not be loaded or verified."""


def _squash(value: float) -> float:
    """Soft-sign squash into (-1, 1): ``x / (1 + |x|)``.

    The rate-style features (garbage per overwrite, allocation rate,
    overwrite burstiness, age) are unbounded — a near-idle interval can
    push them into the hundreds, which blows plain SGD up. Squashing
    keeps every feature O(1) for *any* workload scale while staying
    monotone and sign-preserving, so the linear model can still order
    states by them.
    """
    return value / (1.0 + abs(value))


class FeatureTracker:
    """Folds successive collection observations into a feature vector.

    One observation per collection: the global pointer-overwrite clock,
    the bytes reclaimed, the surviving bytes of the victim, and the
    database size. Everything else — rates, smoothed ratios, the
    partition-age proxy — is derived internally, so the live estimator
    and the telemetry reader cannot disagree about what a feature means.
    """

    def __init__(self, history: float = DEFAULT_FEATURE_HISTORY) -> None:
        self.history = history
        self._count = 0
        self._prev_clock = 0.0
        self._prev_db = 0.0
        self._reclaimed_smooth = ExponentialMean(history)
        self._gppo_smooth = ExponentialMean(history)
        self._gppo_bytes_smooth = ExponentialMean(history)

    @property
    def count(self) -> int:
        """Collections observed so far."""
        return self._count

    def observe(
        self,
        overwrite_clock: float,
        reclaimed_bytes: float,
        live_bytes: float,
        db_size: float,
        pending_overwrites: float = 0.0,
        partition_count: float = 0.0,
    ) -> list[float]:
        """Fold one collection's observables; return the feature vector.

        The last three features are the hand-designed estimators stacked
        as inputs: ``cgs_extrap`` is the CGS/CB extrapolation of this
        collection's yield, ``fgs_extrap`` the FGS/HB-style product of
        smoothed garbage-per-overwrite and pending overwrites, and
        ``pending_rate`` the raw pending-overwrite pressure. A linear
        model can therefore *at least* reproduce either hand-designed
        estimator (weight 1 on its feature) and learn corrections on top.
        """
        delta_clock = max(overwrite_clock - self._prev_clock, 0.0)
        db = max(db_size, 1.0)
        self._count += 1
        mean_interval = overwrite_clock / self._count

        reclaimed_ratio = reclaimed_bytes / db
        gppo_frac = _squash((reclaimed_bytes / max(delta_clock, 1.0)) * (_KILO / db))
        alloc_frac = _squash(
            ((db_size - self._prev_db) / max(delta_clock, 1.0)) * (_KILO / db)
        )
        turned_over = live_bytes + reclaimed_bytes
        survivor_ratio = live_bytes / turned_over if turned_over > 0 else 0.0
        gppo_bytes = self._gppo_bytes_smooth.update(
            reclaimed_bytes / max(delta_clock, 1.0)
        )
        features = [
            1.0,
            reclaimed_ratio,
            self._reclaimed_smooth.update(reclaimed_ratio),
            gppo_frac,
            self._gppo_smooth.update(gppo_frac),
            _squash(delta_clock / max(mean_interval, 1.0)),
            alloc_frac,
            survivor_ratio,
            _squash(mean_interval / _KILO),
            _squash(reclaimed_bytes * partition_count / db),
            _squash(gppo_bytes * pending_overwrites / db),
            _squash(pending_overwrites / max(mean_interval, 1.0)),
        ]
        self._prev_clock = overwrite_clock
        self._prev_db = db_size
        return features


@dataclass(frozen=True)
class LearnedModel:
    """A trained linear garbage-fraction model plus its provenance.

    The prediction is ``clip(w · x, 0, 1)`` — a garbage *fraction*; the
    estimator multiplies by the live database size to produce ``ActGarb``
    bytes. ``feature_history`` is the EMA factor the feature tracker must
    replay with, so it travels with the weights.
    """

    weights: tuple[float, ...]
    feature_names: tuple[str, ...] = FEATURE_NAMES
    feature_history: float = DEFAULT_FEATURE_HISTORY
    seed: int = 0
    learning_rate: float = 0.05
    epochs: int = 200
    l2: float = 1e-4
    trained_rows: int = 0
    trained_files: int = 0
    train_mae: float = 0.0
    baseline_mae: float = 0.0

    def predict(self, features: Sequence[float]) -> float:
        """Predicted garbage fraction, clipped to [0, 1]."""
        raw = sum(w * x for w, x in zip(self.weights, features))
        return min(max(raw, 0.0), 1.0)

    def payload(self) -> dict:
        """The JSON-compatible artifact body (everything but the hash)."""
        return {
            "format": MODEL_FORMAT,
            "kind": "learned-linear",
            "feature_names": list(self.feature_names),
            "weights": list(self.weights),
            "feature_history": self.feature_history,
            "hyper": {
                "seed": self.seed,
                "learning_rate": self.learning_rate,
                "epochs": self.epochs,
                "l2": self.l2,
            },
            "trained": {
                "rows": self.trained_rows,
                "files": self.trained_files,
                "mae": self.train_mae,
                "baseline_mae": self.baseline_mae,
            },
        }

    @property
    def sha256(self) -> str:
        """Content hash of the canonical artifact body."""
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def save(self, path: Union[str, Path]) -> Path:
        """Write the versioned, self-hashed artifact (stable byte output)."""
        path = Path(path)
        document = self.payload()
        document["sha256"] = self.sha256
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        return path

    @classmethod
    def from_payload(cls, document: dict) -> "LearnedModel":
        if document.get("format") != MODEL_FORMAT:
            raise ModelError(
                f"model format {document.get('format')!r} "
                f"(this loader understands {MODEL_FORMAT})"
            )
        if document.get("kind") != "learned-linear":
            raise ModelError(f"unknown model kind {document.get('kind')!r}")
        hyper = document.get("hyper", {})
        trained = document.get("trained", {})
        model = cls(
            weights=tuple(float(w) for w in document["weights"]),
            feature_names=tuple(document["feature_names"]),
            feature_history=float(document["feature_history"]),
            seed=int(hyper.get("seed", 0)),
            learning_rate=float(hyper.get("learning_rate", 0.05)),
            epochs=int(hyper.get("epochs", 200)),
            l2=float(hyper.get("l2", 1e-4)),
            trained_rows=int(trained.get("rows", 0)),
            trained_files=int(trained.get("files", 0)),
            train_mae=float(trained.get("mae", 0.0)),
            baseline_mae=float(trained.get("baseline_mae", 0.0)),
        )
        stored = document.get("sha256")
        if stored is not None and stored != model.sha256:
            raise ModelError(
                f"model artifact is corrupt: stored hash {stored[:12]}… does "
                f"not match recomputed {model.sha256[:12]}…"
            )
        return model

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LearnedModel":
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ModelError(f"cannot read model artifact {path}: {exc}") from exc
        if not isinstance(document, dict):
            raise ModelError(f"{path}: model artifact is not a JSON object")
        return cls.from_payload(document)


@dataclass(frozen=True)
class TrainingRow:
    """One (features, oracle garbage fraction) training example."""

    features: tuple[float, ...]
    target: float
    #: Where the example came from (telemetry file, collection number).
    source: str = ""
    collection: int = 0


@dataclass
class TrainingReport:
    """What :func:`train_model` did — printed by the ``train`` CLI."""

    rows: int
    files: int
    epochs: int
    mae: float
    baseline_mae: float
    mean_target: float


def train_model(
    rows: Sequence[TrainingRow],
    seed: int = 0,
    learning_rate: float = 0.05,
    epochs: int = 200,
    l2: float = 1e-4,
    feature_history: float = DEFAULT_FEATURE_HISTORY,
    files: int = 0,
) -> tuple[LearnedModel, TrainingReport]:
    """Fit the linear model with deterministic seeded SGD.

    The update rule is a pure function of (rows, seed, hyperparameters):
    weights initialise from ``random.Random(seed)``, each epoch visits the
    rows in a seeded shuffle, and the learning rate decays as
    ``lr / (1 + epoch / 10)``. Repeat invocations produce bit-identical
    weights — the CI training-determinism gate depends on it.

    Raises:
        ValueError: when ``rows`` is empty — there is nothing to fit.
    """
    if not rows:
        raise ValueError("cannot train a learned estimator from zero rows")
    width = len(FEATURE_NAMES)
    rng = random.Random(seed)
    weights = [rng.uniform(-0.01, 0.01) for _ in range(width)]

    order = list(range(len(rows)))
    for epoch in range(epochs):
        rng.shuffle(order)
        rate = learning_rate / (1.0 + epoch / 10.0)
        for index in order:
            row = rows[index]
            predicted = sum(w * x for w, x in zip(weights, row.features))
            error = predicted - row.target
            for j, x in enumerate(row.features):
                weights[j] -= rate * (error * x + l2 * weights[j])

    mean_target = sum(row.target for row in rows) / len(rows)
    errors = []
    for row in rows:
        predicted = sum(w * x for w, x in zip(weights, row.features))
        errors.append(abs(min(max(predicted, 0.0), 1.0) - row.target))
    mae = sum(errors) / len(rows)
    baseline_mae = sum(abs(mean_target - row.target) for row in rows) / len(rows)

    model = LearnedModel(
        weights=tuple(weights),
        feature_history=feature_history,
        seed=seed,
        learning_rate=learning_rate,
        epochs=epochs,
        l2=l2,
        trained_rows=len(rows),
        trained_files=files,
        train_mae=mae,
        baseline_mae=baseline_mae,
    )
    report = TrainingReport(
        rows=len(rows),
        files=files,
        epochs=epochs,
        mae=mae,
        baseline_mae=baseline_mae,
        mean_target=mean_target,
    )
    return model, report


class LearnedEstimator(GarbageEstimator):
    """A trained model deployed as a pluggable :class:`GarbageEstimator`.

    ``observe_collection`` folds each collection's observables through the
    same :class:`FeatureTracker` the model was trained against;
    ``estimate`` is side-effect-free and returns the model's predicted
    garbage fraction times the live database size. Before the first
    collection there is nothing to condition on and the estimate is 0.

    ``online_rate > 0`` additionally fine-tunes the weights during the
    run against the *observable* CGS-extrapolated target
    (``reclaimed × partitions / db_size`` — no oracle required). The
    update draws no randomness, so runs stay deterministic; it defaults
    to off so a deployed artifact's behaviour is exactly its weights.
    """

    name = "learned"

    def __init__(
        self,
        model: LearnedModel,
        online_rate: float = 0.0,
        keep_trace: bool = False,
    ) -> None:
        self.model = model
        self.online_rate = online_rate
        self._weights = list(model.weights)
        self._tracker = FeatureTracker(history=model.feature_history)
        self._features: Optional[list[float]] = None
        #: Per-collection feature vectors, retained only when asked
        #: (the train/serve-skew property test replays these).
        self.feature_trace: list[list[float]] = []
        self._keep_trace = keep_trace

    @property
    def weights(self) -> list[float]:
        """Current weights (a copy; diverges from the model when online)."""
        return list(self._weights)

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        if self.online_rate > 0.0 and self._features is not None:
            # The collection just revealed its victim's garbage; the CGS
            # extrapolation of that yield is an oracle-free label for the
            # state the previous feature vector described.
            db = max(store.db_size, 1)
            observed = min(
                max(result.reclaimed_bytes * store.partition_count / db, 0.0),
                1.0,
            )
            features = self._features
            predicted = sum(w * x for w, x in zip(self._weights, features))
            error = predicted - observed
            for j, x in enumerate(features):
                self._weights[j] -= self.online_rate * error * x
        self._features = self._tracker.observe(
            overwrite_clock=float(result.overwrite_clock),
            reclaimed_bytes=float(result.reclaimed_bytes),
            live_bytes=float(result.live_bytes),
            db_size=float(store.db_size),
            pending_overwrites=float(
                sum(p.pointer_overwrites for p in store.partitions)
            ),
            partition_count=float(store.partition_count),
        )
        if self._keep_trace:
            self.feature_trace.append(list(self._features))

    def estimate(self, store: ObjectStore) -> float:
        if self._features is None:
            return 0.0
        raw = sum(w * x for w, x in zip(self._weights, self._features))
        return min(max(raw, 0.0), 1.0) * store.db_size

    def describe(self) -> str:
        suffix = f"@{self.model.sha256[:8]}"
        if self.online_rate > 0.0:
            suffix += f"+online({self.online_rate:g})"
        return f"learned{suffix}"


# ----------------------------------------------------------------------
# Registry spec form: ``learned:<path>[@<hash-prefix>]``
# ----------------------------------------------------------------------


def model_spec(path: Union[str, Path]) -> str:
    """The content-pinned registry spec for a saved model artifact.

    ``learned:<path>@<hash12>`` — experiment fingerprints derived from the
    spec then track the artifact's *content*: retraining the model at the
    same path changes the spec, so stale cached results can never be
    mistaken for results of the new model.
    """
    model = LearnedModel.load(path)
    return f"learned:{path}@{model.sha256[:12]}"


def parse_model_spec(spec: str) -> tuple[str, Optional[str]]:
    """Split ``learned:<path>[@<hash-prefix>]`` into (path, hash-prefix)."""
    if not spec.startswith("learned:"):
        raise ValueError(f"not a learned-estimator spec: {spec!r}")
    rest = spec[len("learned:") :]
    if not rest:
        raise ValueError(
            "learned-estimator spec needs a model path: learned:<model.json>"
        )
    path, _, digest = rest.rpartition("@")
    if not path:
        return rest, None
    return path, digest


def estimator_from_spec(
    spec: str, online_rate: float = 0.0, keep_trace: bool = False
) -> LearnedEstimator:
    """Load the model named by a ``learned:`` spec, verifying any hash pin."""
    path, digest = parse_model_spec(spec)
    model = LearnedModel.load(path)
    if digest and not model.sha256.startswith(digest):
        raise ModelError(
            f"model at {path} has hash {model.sha256[:12]}…, but the spec "
            f"pins {digest}… — the artifact changed since the spec was built"
        )
    return LearnedEstimator(model, online_rate=online_rate, keep_trace=keep_trace)


__all__ = [
    "DEFAULT_FEATURE_HISTORY",
    "FEATURE_NAMES",
    "FeatureTracker",
    "LearnedEstimator",
    "LearnedModel",
    "MODEL_FORMAT",
    "ModelError",
    "TrainingReport",
    "TrainingRow",
    "estimator_from_spec",
    "model_spec",
    "parse_model_spec",
    "train_model",
]
