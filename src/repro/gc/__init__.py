"""Partitioned copying garbage collector and partition-selection policies."""

from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.learned import (
    FeatureTracker,
    LearnedEstimator,
    LearnedModel,
    estimator_from_spec,
    model_spec,
    train_model,
)
from repro.gc.parallel import (
    COLLECTION_MODES,
    DEFAULT_GC_MARGIN,
    ParallelCollectionScheduler,
    peek_selection,
)
from repro.gc.selection import (
    MostGarbageOracleSelection,
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
    make_selection_policy,
)

__all__ = [
    "COLLECTION_MODES",
    "DEFAULT_GC_MARGIN",
    "CollectionResult",
    "CopyingCollector",
    "FeatureTracker",
    "LearnedEstimator",
    "LearnedModel",
    "MostGarbageOracleSelection",
    "ParallelCollectionScheduler",
    "PartitionSelectionPolicy",
    "RandomSelection",
    "RoundRobinSelection",
    "UpdatedPointerSelection",
    "estimator_from_spec",
    "make_selection_policy",
    "model_spec",
    "peek_selection",
    "train_model",
]
