"""Partitioned copying garbage collector and partition-selection policies."""

from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.selection import (
    MostGarbageOracleSelection,
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
    make_selection_policy,
)

__all__ = [
    "CollectionResult",
    "CopyingCollector",
    "MostGarbageOracleSelection",
    "PartitionSelectionPolicy",
    "RandomSelection",
    "RoundRobinSelection",
    "UpdatedPointerSelection",
    "make_selection_policy",
]
