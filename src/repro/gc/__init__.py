"""Partitioned copying garbage collector and partition-selection policies."""

from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.learned import (
    FeatureTracker,
    LearnedEstimator,
    LearnedModel,
    estimator_from_spec,
    model_spec,
    train_model,
)
from repro.gc.selection import (
    MostGarbageOracleSelection,
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
    make_selection_policy,
)

__all__ = [
    "CollectionResult",
    "CopyingCollector",
    "FeatureTracker",
    "LearnedEstimator",
    "LearnedModel",
    "MostGarbageOracleSelection",
    "PartitionSelectionPolicy",
    "RandomSelection",
    "RoundRobinSelection",
    "UpdatedPointerSelection",
    "estimator_from_spec",
    "make_selection_policy",
    "model_spec",
    "train_model",
]
