"""Partition-parallel collection: speculative tracing pipelined with replay.

The serial collector runs both halves of a collection — the read-only
survivor trace and the mutating reclamation — inside the trigger's
stop-the-world window, on the replay thread. This module decouples them:

1. **Snapshot.** When the trigger's *margin* window opens (a configurable
   fraction of the interval before the due point), the scheduler predicts
   the likely victim partitions and snapshots each one's frontier — the
   conservative roots and external fix-up pages the
   :class:`~repro.gc.remembered.RememberedSetIndex` maintains incrementally
   — together with the store's trace epochs at that instant.
2. **Trace.** Workers Cheney-trace the snapshots over a read-only view of
   the heap (the flat :class:`~repro.storage.objtable.PlacementTable`
   columns and the object table) while the replay / stream-admission loop
   keeps running. With ``workers > 1`` the traces fan out to threads; with
   ``workers == 1`` they run inline at the pump point. Either way the trace
   happens *outside* the collection pause.
3. **Validate + ordered apply.** When the trigger actually fires, the
   scheduler joins any outstanding workers (apply never races a trace),
   re-checks the victim's trace epochs, and applies reclamation through
   the exact serial sequence (:meth:`~repro.gc.collector.CopyingCollector.
   apply`). A stale snapshot — any frontier- or graph-affecting mutation
   bumped the partition's epoch, or any compaction bumped the global
   epoch — is discarded and the trace re-runs inline, which *is* the
   serial path.

Because a speculative trace is only ever used when the epochs prove it
equals what an inline trace would compute, results are **identical to the
serial collector at any worker count**: pickle-equal summaries, identical
iostats, identical crash/recovery drills. Worker count and margin affect
wall-clock only — which is why ``collection=`` / ``gc_workers=`` are
excluded from result-cache fingerprints, exactly like ``reachability=``
and ``replay=``.

Conservatism is unchanged from the serial collector: a remembered-in
reference is a root even when its source is garbage, so cross-partition
cycles still survive until :meth:`~repro.gc.collector.CopyingCollector.
collect_global` — speculation neither widens nor narrows the frontier.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.remembered import full_scan_frontier
from repro.gc.selection import (
    MostGarbageOracleSelection,
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
)
from repro.storage.heap import ObjectStore
from repro.storage.partition import PartitionId
from repro.storage.traversal import breadth_first_order

if TYPE_CHECKING:
    from repro.storage.buffer import PageId
    from repro.storage.heap import CompactionPlan

#: Valid ``collection`` modes: ``"serial"`` runs trace + apply inside the
#: trigger window on the replay thread; ``"parallel"`` pre-traces likely
#: victims speculatively during the margin window and validates at apply.
#: Both produce identical results — the serial path is the A/B reference.
COLLECTION_MODES = ("serial", "parallel")

#: Default margin: the fraction of the trigger interval before the due
#: point at which speculative tracing starts. Smaller margins leave less
#: time for the victim to be mutated (higher speculation hit rates) but
#: less overlap; the value only shifts wall-clock, never results.
DEFAULT_GC_MARGIN = 0.25


def peek_selection(
    selection: PartitionSelectionPolicy, store: ObjectStore
) -> Optional[PartitionId]:
    """Predict ``selection.select(store)`` without mutating policy state.

    The stateless built-ins are probed directly; the stateful ones have
    their state saved and restored around the probe (``RoundRobin``'s
    cursor, ``Random``'s generator state — consuming entropy here would
    desynchronise the real draw and change results). Unknown policy
    subclasses return ``None``: no speculation, the collection simply runs
    the serial path inline.
    """
    kind = type(selection)
    if kind is UpdatedPointerSelection or kind is MostGarbageOracleSelection:
        return selection.select(store)
    if kind is RoundRobinSelection:
        saved = selection._last
        try:
            return selection.select(store)
        finally:
            selection._last = saved
    if kind is RandomSelection:
        state = selection._rng.getstate()
        try:
            return selection.select(store)
        finally:
            selection._rng.setstate(state)
    return None


class _Speculation:
    """One partition's frontier snapshot plus its (eventual) trace result."""

    __slots__ = (
        "pid",
        "partition_epoch",
        "compaction_epoch",
        "roots",
        "fixup_pages",
        "survivors",
        "plan",
        "failed",
        "thread",
    )

    def __init__(
        self,
        pid: PartitionId,
        partition_epoch: int,
        compaction_epoch: int,
        roots: list[int],
        fixup_pages: "set[PageId]",
    ) -> None:
        self.pid = pid
        self.partition_epoch = partition_epoch
        self.compaction_epoch = compaction_epoch
        self.roots = roots
        self.fixup_pages = fixup_pages
        self.survivors: Optional[list[int]] = None
        self.plan: "Optional[CompactionPlan]" = None
        self.failed = False
        self.thread: Optional[threading.Thread] = None


class ParallelCollectionScheduler:
    """Pipelines the read-only half of collections with replay intake.

    Args:
        store: The heap being collected.
        collector: The serial collector whose ``prepare``/``apply`` split
            this scheduler drives; apply order (and therefore every
            result) is exactly the serial trigger order.
        selection: The run's partition-selection policy, probed
            non-mutatingly to predict victims.
        workers: Fan-out width. ``1`` traces inline at the pump point;
            ``N > 1`` snapshots up to N candidate partitions and traces
            them on N ephemeral threads. Results are identical at any
            value (speculation is validated before use); only wall-clock
            differs.
        margin: Fraction of the trigger interval before the due point at
            which the simulator pumps speculative traces.
    """

    def __init__(
        self,
        store: ObjectStore,
        collector: CopyingCollector,
        selection: PartitionSelectionPolicy,
        workers: int = 1,
        margin: float = DEFAULT_GC_MARGIN,
    ) -> None:
        if workers < 1:
            raise ValueError(f"gc_workers must be >= 1, got {workers}")
        if not 0.0 <= margin < 1.0:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.store = store
        self.collector = collector
        self.selection = selection
        self.workers = workers
        self.margin = margin
        self._pending: dict[PartitionId, _Speculation] = {}
        #: Observability counters (telemetry-only — never part of summaries
        #: or reports). Snapshot validity depends on the store's epoch
        #: counters, not thread timing, so these are deterministic at
        #: ``workers == 1``; at higher counts a worker's trace can fail
        #: from an unrelated concurrent dict resize, turning a would-be
        #: hit into a stale — results are unaffected (the fallback *is*
        #: the serial path) but hit/stale splits may vary run to run.
        self.pumps = 0
        self.speculative_traces = 0
        self.speculation_hits = 0
        self.speculation_stale = 0
        self.speculation_misses = 0

    # ------------------------------------------------------------------
    # Pump: speculative snapshot + trace (read-only)
    # ------------------------------------------------------------------

    def pump(self) -> None:
        """Speculatively trace up to ``workers`` likely victim partitions.

        Called by the simulator when the margin window opens (and by the
        service between admitted events). Touches no mutable store state —
        a pump can never change what the run computes.
        """
        self.pumps += 1
        # Threads spawned by the *previous* pump have had the inter-pump
        # mutator window to run; joining them here keeps every worker's
        # lifetime inside the margin window (off-pause) rather than letting
        # it compete with the collection pause for the interpreter.
        for pending in self._pending.values():
            if pending.thread is not None:
                pending.thread.join()
                pending.thread = None
        victims = self.predict_victims()
        for index, pid in enumerate(victims):
            current = self._pending.get(pid)
            if current is not None:
                if self._valid(current):
                    continue
                if index > 0:
                    # Stale *extra* snapshots are not refreshed per tick —
                    # they are breadth insurance against a prediction miss,
                    # and validation discards them at apply anyway. Only
                    # the primary earns the per-tick re-trace.
                    continue
            spec = self._snapshot(pid)
            self._pending[pid] = spec
            self.speculative_traces += 1
            if index == 0:
                # The best prediction is traced inline at the pump point —
                # still outside the collection pause, and immune to worker
                # scheduling (on a GIL-bound single core, threads may not
                # run before the trigger fires).
                self._trace_into(spec)
            else:
                spec.thread = threading.Thread(
                    target=self._trace_into,
                    args=(spec,),
                    name=f"gc-trace-p{spec.pid}",
                    daemon=True,
                )
                spec.thread.start()

    def predict_victims(self) -> list[PartitionId]:
        """Up to ``workers`` non-overlapping candidate partitions.

        The selection policy's own (non-mutating) prediction first, then
        the next most-overwritten collectable partitions — the same signal
        UPDATEDPOINTER ranks by — as speculative breadth against
        prediction misses.
        """
        primary = peek_selection(self.selection, self.store)
        if primary is None:
            return []
        victims = [primary]
        extra = self.workers - 1
        if extra > 0:
            partitions = self.store.partitions
            others = [
                p.pid
                for p in partitions
                if p.residents and p.pid != primary
            ]
            others.sort(
                key=lambda pid: (-partitions[pid].pointer_overwrites, pid)
            )
            victims.extend(others[:extra])
        return victims

    # ------------------------------------------------------------------
    # Apply: validate + deterministic serial-order reclamation
    # ------------------------------------------------------------------

    def collect(self, pid: PartitionId) -> CollectionResult:
        """Collect ``pid``, reusing a speculative trace when still exact.

        Joins every outstanding worker first (a trace must never race the
        compaction about to run), validates the victim's snapshot against
        the store's current epochs, and falls back to an inline
        :meth:`~repro.gc.collector.CopyingCollector.prepare` — the serial
        path — when the snapshot is stale or absent. Reclamation is then
        applied through the serial ``apply`` sequence, so the result is
        byte-identical to ``CopyingCollector.collect(pid)``.
        """
        spec = self._pending.pop(pid, None)
        # Compaction bumps the global epoch, invalidating every other
        # outstanding snapshot — drop them without joining their workers.
        # Orphaned traces only *read* heap structures and write into spec
        # objects nobody will look at again: a concurrent mutation during
        # their reads raises (caught, marks the orphan failed) but cannot
        # corrupt interpreter state or influence any result.
        self._pending.clear()
        if spec is not None and spec.thread is not None:
            spec.thread.join()

        if spec is not None and self._valid(spec) and spec.survivors is not None:
            self.speculation_hits += 1
            return self.collector.apply(
                pid, spec.survivors, spec.fixup_pages, plan=spec.plan
            )
        if spec is not None:
            self.speculation_stale += 1
        else:
            self.speculation_misses += 1
        survivors, fixup_pages = self.collector.prepare(pid)
        return self.collector.apply(pid, survivors, fixup_pages)

    def stats(self) -> dict[str, int]:
        """Speculation counters for telemetry (`gc.parallel.*`)."""
        return {
            "pumps": self.pumps,
            "speculative_traces": self.speculative_traces,
            "speculation_hits": self.speculation_hits,
            "speculation_stale": self.speculation_stale,
            "speculation_misses": self.speculation_misses,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _snapshot(self, pid: PartitionId) -> _Speculation:
        """Capture the frontier and epoch pair on the mutator thread.

        Runs at a quiescent point (between events), so reading the
        remembered-set index and placement columns is safe. Roots are
        sorted here — the same stable order the serial trace enqueues.
        """
        store = self.store
        if self.collector.reachability == "full":
            roots, fixup_pages = full_scan_frontier(store, pid)
        else:
            roots = store.partition_roots(pid)
            fixup_pages = store.external_source_pages(pid)
        return _Speculation(
            pid=pid,
            partition_epoch=store.trace_epochs[pid],
            compaction_epoch=store.compaction_epoch,
            roots=sorted(roots),
            fixup_pages=fixup_pages,
        )

    def _trace_into(self, spec: _Speculation) -> None:
        """Cheney-trace one snapshot; runs on a worker thread or inline.

        Reads live heap structures without copying them: if any relevant
        structure mutates while the trace runs, the partition's epoch has
        been bumped and the result is discarded at validation — so a torn
        read can only waste the trace, never corrupt a collection. Raised
        exceptions (e.g. a dict resized mid-iteration) mark the snapshot
        failed, which validation treats as stale.
        """
        store = self.store
        try:
            survivors = breadth_first_order(
                store.objects,
                spec.roots,
                within=store.partitions[spec.pid].residents,
            )
            # Also precompute the compaction layout — the pure half of the
            # reclamation the pause would otherwise re-derive. Guarded by
            # the same epoch pair as the trace.
            spec.plan = store.plan_compaction(spec.pid, survivors)
            spec.survivors = survivors
        except Exception:
            spec.failed = True

    def _valid(self, spec: _Speculation) -> bool:
        return (
            not spec.failed
            and spec.compaction_epoch == self.store.compaction_epoch
            and spec.partition_epoch == self.store.trace_epochs[spec.pid]
        )
