"""Partitioned copying garbage collector.

The collector implements the algorithm of §3.1, following [CWZ94] and [Che70]:

* One partition is collected at a time (chosen by a partition-selection
  policy, see :mod:`repro.gc.selection`).
* Liveness within the partition is computed by a breadth-first (Cheney)
  traversal from the partition's conservative roots — database roots resident
  in the partition plus every resident with a remembered incoming reference.
  Pointers *leaving* the partition are not traversed.
* Survivors are copied (compacted) to the front of the partition in
  breadth-first copy order, improving reference locality; everything else is
  reclaimed.

I/O cost model (documented in DESIGN.md): a collection

1. reads every allocated page of the victim partition,
2. writes the compacted survivor pages, and
3. performs a read-modify-write of each distinct external page holding a
   pointer into the partition (relocation fix-up of remembered references).

Buffered pages of the victim partition are invalidated (their images are
stale after compaction); the dirty ones among them are written back first,
charged to the collector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.remembered import full_scan_frontier
from repro.storage.buffer import PageId
from repro.storage.heap import CompactionPlan, ObjectStore
from repro.storage.iostats import IOCategory
from repro.storage.object_model import ObjectId
from repro.storage.partition import PartitionId
from repro.storage.traversal import breadth_first_order

#: Valid ``reachability`` modes: ``"remembered"`` derives each collection's
#: frontier from the store's incremental index (O(partition + boundary));
#: ``"full"`` recomputes it from a whole-heap scan per collection (O(heap)).
#: Both produce identical results — the switch exists for A/B verification
#: and for the ``collection_throughput`` benchmark.
REACHABILITY_MODES = ("remembered", "full")


@dataclass(frozen=True)
class CollectionResult:
    """Outcome of collecting one partition.

    Attributes:
        collection_number: Zero-based sequence number of this collection.
        partition: The partition that was collected.
        reclaimed_bytes: Garbage bytes reclaimed ("collection yield").
        reclaimed_objects: Number of objects reclaimed.
        live_bytes: Bytes of surviving objects after compaction.
        live_objects: Number of surviving objects.
        gc_reads: Read I/O operations charged to this collection.
        gc_writes: Write I/O operations charged to this collection.
        pointer_overwrites_at_selection: The victim partition's FGS counter
            at the moment it was collected (its "PO(p)" of §2.4, consumed by
            the FGS-based garbage estimators before it is reset to zero).
        overwrite_clock: Global pointer-overwrite clock when the collection
            ran (the SAGA policy's notion of time).
    """

    collection_number: int
    partition: PartitionId
    reclaimed_bytes: int
    reclaimed_objects: int
    live_bytes: int
    live_objects: int
    gc_reads: int
    gc_writes: int
    pointer_overwrites_at_selection: int
    overwrite_clock: int

    @property
    def gc_io(self) -> int:
        """Total I/O operations this collection performed."""
        return self.gc_reads + self.gc_writes

    @property
    def yield_per_overwrite(self) -> float:
        """Bytes reclaimed per pointer overwrite recorded against the victim
        partition — the current-behaviour ``GPPO`` sample of §2.4.2 (0 when
        the partition saw no overwrites)."""
        if self.pointer_overwrites_at_selection == 0:
            return 0.0
        return self.reclaimed_bytes / self.pointer_overwrites_at_selection


class CopyingCollector:
    """Collects one partition at a time with Cheney copying compaction.

    Args:
        store: The heap to collect.
        reachability: How each collection's frontier (conservative roots +
            external fix-up pages) is derived — see
            :data:`REACHABILITY_MODES`. The default ``"remembered"`` reads
            the store's incrementally maintained index; ``"full"`` is the
            from-scratch whole-heap baseline kept for A/B verification.
            Within-partition tracing is identical in both modes, and so are
            all results (summaries are pickle-equal, property-tested).
    """

    def __init__(self, store: ObjectStore, reachability: str = "remembered") -> None:
        if reachability not in REACHABILITY_MODES:
            raise ValueError(
                f"reachability must be one of {REACHABILITY_MODES}, "
                f"got {reachability!r}"
            )
        self._store = store
        self.reachability = reachability
        self.collections_performed = 0
        self.total_reclaimed_bytes = 0
        #: Objects traced (visited by the survivor scan) across all
        #: collections — the numerator of the traced-vs-heap telemetry and
        #: the bench's traced-objects-per-collection.
        self.traced_objects_total = 0
        #: Heap size (object count) sampled at each collection, summed —
        #: the denominator of the traced-vs-heap ratio.
        self.heap_objects_total = 0

    def collect(self, pid: PartitionId) -> CollectionResult:
        """Collect partition ``pid`` and return the outcome."""
        survivors, fixup_pages = self.prepare(pid)
        return self.apply(pid, survivors, fixup_pages)

    def prepare(self, pid: PartitionId) -> tuple[list[ObjectId], set[PageId]]:
        """The read-only half of a collection: frontier + survivor trace.

        Derives the partition's conservative roots and external fix-up
        pages, then Cheney-traces the survivors. Mutates nothing and
        charges no I/O, so it can run speculatively ahead of the trigger
        (the parallel scheduler of :mod:`repro.gc.parallel` does exactly
        that) — ``collect(pid)`` is always ``prepare`` + ``apply``.
        """
        store = self._store
        if self.reachability == "full":
            roots, fixup_pages = full_scan_frontier(store, pid)
        else:
            roots = store.partition_roots(pid)
            fixup_pages = store.external_source_pages(pid)
        return self._trace_survivors(pid, roots), fixup_pages

    def apply(
        self,
        pid: PartitionId,
        survivors: list[ObjectId],
        fixup_pages: set[PageId],
        plan: "CompactionPlan | None" = None,
    ) -> CollectionResult:
        """The mutating half of a collection: reclaim, compact, charge I/O.

        ``survivors``/``fixup_pages`` must describe the partition's *current*
        state (either just computed by :meth:`prepare`, or a speculative
        trace validated against the store's trace epochs). ``plan`` is an
        optional precomputed :class:`~repro.storage.heap.CompactionPlan`
        under the same validity contract — it shortens the pause but never
        changes the outcome.
        """
        store = self._store
        partition = store.partitions[pid]
        po_before = partition.pointer_overwrites
        overwrite_clock = store.pointer_overwrites
        pages_before = partition.used_pages(store.config.page_size)
        self.traced_objects_total += len(survivors)
        self.heap_objects_total += len(store.objects)

        reads_before = store.iostats.collector.reads
        writes_before = store.iostats.collector.writes

        # 1. Read the victim partition (every allocated page). Stale buffered
        #    images are invalidated (dirty ones written back) first.
        store.buffer.invalidate_partition(pid, IOCategory.COLLECTOR)
        store.iostats.record_read(IOCategory.COLLECTOR, pages_before)

        # 2. Compact: reclaim non-survivors and rewrite survivors contiguously.
        reclaimed_objects = len(partition.residents) - len(survivors)
        reclaimed_bytes = store.compact_partition(pid, survivors, plan=plan)
        pages_after = partition.used_pages(store.config.page_size)
        store.iostats.record_write(IOCategory.COLLECTOR, pages_after)

        # 3. Fix up external references to relocated objects.
        fixups = len(fixup_pages)
        store.iostats.record_read(IOCategory.COLLECTOR, fixups)
        store.iostats.record_write(IOCategory.COLLECTOR, fixups)

        live_bytes = partition.fill
        result = CollectionResult(
            collection_number=self.collections_performed,
            partition=pid,
            reclaimed_bytes=reclaimed_bytes,
            reclaimed_objects=reclaimed_objects,
            live_bytes=live_bytes,
            live_objects=len(survivors),
            gc_reads=store.iostats.collector.reads - reads_before,
            gc_writes=store.iostats.collector.writes - writes_before,
            pointer_overwrites_at_selection=po_before,
            overwrite_clock=overwrite_clock,
        )
        self.collections_performed += 1
        self.total_reclaimed_bytes += reclaimed_bytes
        return result

    def collect_global(self) -> list[CollectionResult]:
        """Collect every partition against *global* reachability.

        Partitioned collection conservatively keeps any resident with a
        remembered external reference — even from dead objects — so
        cross-partition cyclic garbage can survive indefinitely (the
        limitation [YNY94] discusses). A global collection marks the whole
        database from the persistent roots (and allocation pins) once, then
        compacts every partition keeping only globally reachable objects.

        This is the expensive stop-the-world fallback a production system
        schedules rarely; the rate policies never trigger it. Returns one
        :class:`CollectionResult` per partition, in pid order.
        """
        store = self._store
        reachable = store.reachable_from(store.roots | store.unlinked)
        results = []
        for partition in store.partitions:
            pid = partition.pid
            po_before = partition.pointer_overwrites
            overwrite_clock = store.pointer_overwrites
            pages_before = partition.used_pages(store.config.page_size)
            survivors = sorted(partition.residents & reachable)
            fixup_pages = store.external_source_pages(pid)
            self.traced_objects_total += len(survivors)
            self.heap_objects_total += len(store.objects)

            reads_before = store.iostats.collector.reads
            writes_before = store.iostats.collector.writes
            store.buffer.invalidate_partition(pid, IOCategory.COLLECTOR)
            store.iostats.record_read(IOCategory.COLLECTOR, pages_before)
            reclaimed_objects = len(partition.residents) - len(survivors)
            reclaimed_bytes = store.compact_partition(pid, survivors)
            store.iostats.record_write(
                IOCategory.COLLECTOR, partition.used_pages(store.config.page_size)
            )
            fixups = len(fixup_pages)
            store.iostats.record_read(IOCategory.COLLECTOR, fixups)
            store.iostats.record_write(IOCategory.COLLECTOR, fixups)

            results.append(
                CollectionResult(
                    collection_number=self.collections_performed,
                    partition=pid,
                    reclaimed_bytes=reclaimed_bytes,
                    reclaimed_objects=reclaimed_objects,
                    live_bytes=partition.fill,
                    live_objects=len(survivors),
                    gc_reads=store.iostats.collector.reads - reads_before,
                    gc_writes=store.iostats.collector.writes - writes_before,
                    pointer_overwrites_at_selection=po_before,
                    overwrite_clock=overwrite_clock,
                )
            )
            self.collections_performed += 1
            self.total_reclaimed_bytes += reclaimed_bytes
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _trace_survivors(
        self, pid: PartitionId, roots: set[ObjectId]
    ) -> list[ObjectId]:
        """Cheney breadth-first trace from the partition's conservative roots.

        Returns survivors in copy order. Roots are enqueued in a stable sorted
        order so runs are deterministic regardless of how the frontier was
        derived. Restricting the traversal domain to the partition's residents
        means pointers leaving the partition are not traversed (§3.1).
        """
        store = self._store
        return breadth_first_order(
            store.objects, sorted(roots), within=store.partitions[pid].residents
        )
