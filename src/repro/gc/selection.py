"""Partition-selection policies.

Which partition to collect is the policy area studied in the authors' prior
paper [CWZ94]; this reproduction needs it as a substrate. The default is
their UPDATEDPOINTER policy — collect the partition with the most pointer
overwrites recorded against it — which §4.1.2 notes is "effective at finding
a partition with more than an average amount of garbage" (and which is
exactly why the CGS/CB estimator overestimates; the ablation bench swaps in
RANDOM selection to show that effect).
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.storage.heap import ObjectStore
from repro.storage.partition import PartitionId


class PartitionSelectionPolicy(abc.ABC):
    """Chooses which partition a triggered collection should work on."""

    #: Human-readable policy name for reports.
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, store: ObjectStore) -> Optional[PartitionId]:
        """Return the partition to collect, or None if nothing is collectable.

        A partition is *collectable* when it has at least one resident
        object; collecting an empty partition would be pure overhead.
        """

    @staticmethod
    def _collectable(store: ObjectStore) -> list[PartitionId]:
        return [p.pid for p in store.partitions if p.residents]


class UpdatedPointerSelection(PartitionSelectionPolicy):
    """[CWZ94] UPDATEDPOINTER: most pointer overwrites wins (ties: lowest pid)."""

    name = "updated-pointer"

    def select(self, store: ObjectStore) -> Optional[PartitionId]:
        candidates = self._collectable(store)
        if not candidates:
            return None
        return max(candidates, key=lambda pid: (store.partitions[pid].pointer_overwrites, -pid))


class RandomSelection(PartitionSelectionPolicy):
    """Uniformly random collectable partition (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, store: ObjectStore) -> Optional[PartitionId]:
        candidates = self._collectable(store)
        if not candidates:
            return None
        return self._rng.choice(candidates)


class RoundRobinSelection(PartitionSelectionPolicy):
    """Cycle through collectable partitions in pid order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last: PartitionId = -1

    def select(self, store: ObjectStore) -> Optional[PartitionId]:
        candidates = sorted(self._collectable(store))
        if not candidates:
            return None
        for pid in candidates:
            if pid > self._last:
                self._last = pid
                return pid
        self._last = candidates[0]
        return candidates[0]


class MostGarbageOracleSelection(PartitionSelectionPolicy):
    """Oracle baseline: collect the partition with the most actual garbage.

    Uses the store's exact per-partition dead-byte accounting, which no real
    ODBMS could afford; provided as an upper bound for selection quality.
    """

    name = "most-garbage-oracle"

    def select(self, store: ObjectStore) -> Optional[PartitionId]:
        candidates = self._collectable(store)
        if not candidates:
            return None
        return max(candidates, key=lambda pid: (store.partition_garbage_bytes(pid), -pid))


def make_selection_policy(name: str, seed: int = 0) -> PartitionSelectionPolicy:
    """Factory used by the CLI and experiment drivers."""
    policies = {
        UpdatedPointerSelection.name: lambda: UpdatedPointerSelection(),
        RandomSelection.name: lambda: RandomSelection(seed=seed),
        RoundRobinSelection.name: lambda: RoundRobinSelection(),
        MostGarbageOracleSelection.name: lambda: MostGarbageOracleSelection(),
    }
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(
            f"unknown partition selection policy {name!r}; "
            f"choose from {sorted(policies)}"
        ) from None
