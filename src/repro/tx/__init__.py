"""Transactions: atomic operation groups with physical undo, GC exclusion."""

from repro.tx.manager import (
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionState,
)
from repro.tx.recovery import RedoLog, RedoRecord, recover
from repro.tx.wal import RECORD_SIZES, WalStats, WriteAheadLog

__all__ = [
    "RECORD_SIZES",
    "RedoLog",
    "RedoRecord",
    "recover",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionState",
    "WalStats",
    "WriteAheadLog",
]
