"""Transactional operation layer over the object store.

The paper's evaluation assumes the simplest possible concurrency model:
"the entire database is locked while collection is performed, and logging
for recovery is not supported" (§3.2) — and defers real mechanisms to
[AFG95, KLW89, KW93]. This module provides the next step an actual ODBMS
needs: **single-client transactions with physical undo**, so that

* an application's operations can be grouped into atomic units,
* an abort physically reverts every effect — pointer restorations,
  resurrection of objects whose deaths are undone, expunging of objects
  whose creations are undone — leaving the store byte-for-byte consistent,
* the garbage collector runs only *between* transactions (the simulator
  defers triggers while a transaction is open), preserving the paper's
  whole-database-lock model without ever collecting uncommitted state.

Rollback is deliberately invisible to the rate policies: undo operations
advance neither the pointer-overwrite clock nor any partition's FGS counter
(an aborted transaction created no garbage), though they do perform real
page I/O.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.storage.heap import ObjectStore
from repro.storage.object_model import ObjectId, ObjectKind
from repro.tx.recovery import RedoLog
from repro.tx.wal import WriteAheadLog


class TransactionError(Exception):
    """Raised on misuse of the transaction API."""


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class _UndoCreate:
    oid: ObjectId


@dataclass(frozen=True)
class _UndoPointerWrite:
    src: ObjectId
    slot: str
    old_target: Optional[ObjectId]
    slot_existed: bool
    overwrote: bool
    fgs_partition: Optional[int]
    died: tuple[ObjectId, ...]


@dataclass(frozen=True)
class _UndoRoot:
    oid: ObjectId


_UndoRecord = Union[_UndoCreate, _UndoPointerWrite, _UndoRoot]


@dataclass
class Transaction:
    """One open unit of work; obtain via :meth:`TransactionManager.begin`."""

    txid: int
    state: TransactionState = TransactionState.ACTIVE
    undo_log: list[_UndoRecord] = field(default_factory=list)
    operations: int = 0

    @property
    def active(self) -> bool:
        return self.state is TransactionState.ACTIVE


class TransactionManager:
    """Single-client transactional facade over an :class:`ObjectStore`.

    All mutating operations must go through the manager while a transaction
    is open; reads may bypass it. Only one transaction may be open at a
    time (the paper's single-application model — no concurrency control is
    simulated beyond the GC exclusion).
    """

    def __init__(
        self,
        store: ObjectStore,
        wal: Optional[WriteAheadLog] = None,
        redo_log: Optional[RedoLog] = None,
    ) -> None:
        self.store = store
        #: Optional write-ahead log; when present, every operation is logged
        #: and commit/abort force the log (see :mod:`repro.tx.wal`).
        self.wal = wal
        #: Optional logical redo log for crash recovery (repro.tx.recovery).
        self.redo_log = redo_log
        #: Optional fault-injection hook, called as ``hook(site)`` at the
        #: ``tx.begin`` / ``tx.commit`` / ``tx.abort`` sites — always
        #: *before* the boundary's state change, so a crash at ``tx.commit``
        #: loses the transaction (its commit record never becomes durable).
        self.fault_hook = None
        self._next_txid = 1
        self.current: Optional[Transaction] = None
        self.committed = 0
        self.aborted = 0

    def _log(self, record_type: str) -> None:
        if self.wal is not None:
            self.wal.append(record_type)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.current is not None and self.current.active

    def _fire(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def begin(self, txid: Optional[int] = None) -> Transaction:
        self._fire("tx.begin")
        if self.in_transaction:
            raise TransactionError(
                f"transaction {self.current.txid} is still active; "
                "nested transactions are not supported"
            )
        if txid is None:
            txid = self._next_txid
        self._next_txid = max(self._next_txid, txid + 1)
        self.current = Transaction(txid=txid)
        self._log("begin")
        if self.redo_log is not None:
            self.redo_log.begin(txid)
        return self.current

    def commit(self, txid: Optional[int] = None) -> Transaction:
        txn = self._require_active(txid)
        # Crash point *before* the commit record: a crash here loses the
        # transaction entirely — recovery replays nothing of it.
        self._fire("tx.commit")
        # Durability order matters: the WAL force is the modelled act of
        # pushing the commit record to disk, so it must complete *before*
        # the redo log records the commit. A crash mid-force (io.write
        # fault) then leaves no commit record — recovery drops the
        # transaction and the resumed stream re-executes it exactly once,
        # instead of replaying it *and* re-executing it.
        self._log("commit")
        if self.wal is not None:
            self.wal.force()
        if self.redo_log is not None:
            self.redo_log.commit(txn.txid)
        txn.state = TransactionState.COMMITTED
        txn.undo_log.clear()
        self.current = None
        self.committed += 1
        return txn

    def abort(self, txid: Optional[int] = None) -> Transaction:
        """Physically undo every operation of the active transaction."""
        txn = self._require_active(txid)
        self._fire("tx.abort")
        for record in reversed(txn.undo_log):
            self._apply_undo(record)
            self._log("clr")  # compensation log record per undone operation
        txn.undo_log.clear()
        txn.state = TransactionState.ABORTED
        self.current = None
        self.aborted += 1
        self._log("abort")
        if self.redo_log is not None:
            self.redo_log.abort(txn.txid)
        if self.wal is not None:
            self.wal.force()
        return txn

    def _require_active(self, txid: Optional[int]) -> Transaction:
        if not self.in_transaction:
            raise TransactionError("no active transaction")
        if txid is not None and self.current.txid != txid:
            raise TransactionError(
                f"transaction id mismatch: active {self.current.txid}, got {txid}"
            )
        return self.current

    # ------------------------------------------------------------------
    # Operations (proxied to the store, with undo logging)
    # ------------------------------------------------------------------

    def create(
        self,
        size: int,
        kind: ObjectKind = ObjectKind.GENERIC,
        pointers: Optional[dict[str, Optional[ObjectId]]] = None,
        oid: Optional[ObjectId] = None,
    ) -> ObjectId:
        txn = self._require_active(None)
        new_oid = self.store.create(size=size, kind=kind, pointers=pointers, oid=oid)
        txn.undo_log.append(_UndoCreate(oid=new_oid))
        txn.operations += 1
        self._log("create")
        if self.redo_log is not None:
            self.redo_log.create(
                txn.txid,
                new_oid,
                size,
                kind,
                tuple((pointers or {}).items()),
            )
        return new_oid

    def write_pointer(
        self,
        src: ObjectId,
        slot: str,
        target: Optional[ObjectId],
        dies: Sequence[ObjectId] = (),
    ) -> None:
        txn = self._require_active(None)
        src_obj = self.store.objects.get(src)
        if src_obj is None:
            raise TransactionError(f"unknown object {src}")
        slot_existed = slot in src_obj.pointers
        old_target = src_obj.pointers.get(slot)
        overwrote = old_target is not None
        fgs_partition = None
        if overwrote:
            placement = self.store.placements.get(old_target)
            if placement is not None:
                fgs_partition = placement.partition
        # Only record deaths this write actually declares (idempotence of
        # _declare_dead means already-dead victims must not be resurrected
        # twice on undo).
        fresh_deaths = tuple(
            oid
            for oid in dies
            if oid in self.store.objects and not self.store.objects[oid].dead
        )
        self.store.write_pointer(src, slot, target, dies=dies)
        txn.undo_log.append(
            _UndoPointerWrite(
                src=src,
                slot=slot,
                old_target=old_target,
                slot_existed=slot_existed,
                overwrote=overwrote,
                fgs_partition=fgs_partition,
                died=fresh_deaths,
            )
        )
        txn.operations += 1
        self._log("write")
        if self.redo_log is not None:
            self.redo_log.write(txn.txid, src, slot, target, fresh_deaths)

    def access(self, oid: ObjectId):
        """Reads need no undo but are offered for a uniform interface."""
        return self.store.access(oid)

    def update(self, oid: ObjectId) -> None:
        """Non-pointer updates carry no logical state in this model, so the
        undo is a no-op (the page stays dirty — rollback rewrites it)."""
        txn = self._require_active(None)
        self.store.update(oid)
        txn.operations += 1
        self._log("update")

    def register_root(self, oid: ObjectId) -> None:
        txn = self._require_active(None)
        already_root = oid in self.store.roots
        self.store.register_root(oid)
        if not already_root:
            txn.undo_log.append(_UndoRoot(oid=oid))
        txn.operations += 1
        self._log("root")
        if self.redo_log is not None and not already_root:
            self.redo_log.root(txn.txid, oid)

    # ------------------------------------------------------------------
    # Undo application
    # ------------------------------------------------------------------

    def _apply_undo(self, record: _UndoRecord) -> None:
        store = self.store
        if isinstance(record, _UndoPointerWrite):
            for victim in record.died:
                store.resurrect(victim)
            store.undo_pointer_write(
                record.src, record.slot, record.old_target, record.slot_existed
            )
            # The forward write advanced the garbage-creation signals; an
            # aborted transaction must not be visible to the rate policies.
            if record.overwrote:
                store.pointer_overwrites -= 1
                if record.fgs_partition is not None:
                    partition = store.partitions[record.fgs_partition]
                    if partition.pointer_overwrites > 0:
                        partition.pointer_overwrites -= 1
            else:
                store.pointer_stores -= 1
        elif isinstance(record, _UndoCreate):
            store.expunge(record.oid)
        elif isinstance(record, _UndoRoot):
            store.roots.discard(record.oid)
        else:  # pragma: no cover - defensive
            raise TransactionError(f"unknown undo record {record!r}")
