"""Write-ahead logging for the transaction layer.

The paper's simulator assumes "logging for recovery is not supported"
(§3.2) while noting real implementations need it. This module models the
I/O cost of that support, ARIES-style in miniature:

* every transactional operation appends a log record (sized by its type);
* records accumulate in a log tail buffer of one page; each filled page is
  written out — charged as **application** I/O, since logging is work done
  on the application's behalf (which is exactly how it competes with the
  collector under a SAIO budget);
* ``commit`` forces the log: the partially filled tail page is written too;
* ``abort`` appends compensation log records (CLRs) for the undone
  operations and forces — rollback is not free.

The log models cost and bookkeeping, not crash recovery itself: the
simulator never crashes mid-run, so redo/undo replay would be dead code.
What matters to the paper's policies is the I/O the log adds, and that is
modelled faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.iostats import IOCategory, IOStats

#: Modelled record sizes in bytes (header + payload, rounded generously).
RECORD_SIZES = {
    "begin": 16,
    "commit": 16,
    "abort": 16,
    "create": 48,
    "write": 40,
    "root": 20,
    "update": 24,
    "clr": 40,
}


#: Fixed header cost of a variable-sized checkpoint record.
CHECKPOINT_HEADER_SIZE = 32


@dataclass
class WalStats:
    """Cumulative write-ahead-log statistics."""

    records: int = 0
    bytes_logged: int = 0
    pages_written: int = 0
    forces: int = 0
    checkpoints: int = 0
    records_by_type: dict[str, int] = field(default_factory=dict)

    def as_metrics(self) -> dict:
        """Flat metric name → value dict (for the observability registry)."""
        return {
            "records": self.records,
            "bytes_logged": self.bytes_logged,
            "pages_written": self.pages_written,
            "forces": self.forces,
            "checkpoints": self.checkpoints,
        }


class WriteAheadLog:
    """A byte-counting WAL with page-granular forced writes.

    Args:
        iostats: Counter sink; page writes are charged as application I/O.
        page_size: Log page size in bytes (defaults to the store's 8 KB).
    """

    def __init__(self, iostats: IOStats, page_size: int = 8 * 1024) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self._iostats = iostats
        self.page_size = page_size
        self.stats = WalStats()
        self._tail_bytes = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record_type: str) -> None:
        """Append one record of ``record_type`` to the log tail."""
        try:
            size = RECORD_SIZES[record_type]
        except KeyError:
            raise ValueError(
                f"unknown log record type {record_type!r}; "
                f"choose from {sorted(RECORD_SIZES)}"
            ) from None
        self.stats.records += 1
        self.stats.bytes_logged += size
        self.stats.records_by_type[record_type] = (
            self.stats.records_by_type.get(record_type, 0) + 1
        )
        self._tail_bytes += size
        while self._tail_bytes >= self.page_size:
            self._tail_bytes -= self.page_size
            self._write_page()

    def checkpoint(self, payload_bytes: int) -> None:
        """Append one variable-sized checkpoint record and force the log.

        Checkpoints are the service mode's durability points: the snapshot
        payload (``payload_bytes``, modelled — see
        :meth:`repro.tx.recovery.CheckpointSnapshot.estimated_bytes`) is
        written through the normal page-granular path and the tail is
        forced, so a checkpoint pays realistic I/O proportional to the
        state it captures.
        """
        if payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {payload_bytes}"
            )
        size = CHECKPOINT_HEADER_SIZE + payload_bytes
        self.stats.records += 1
        self.stats.bytes_logged += size
        self.stats.checkpoints += 1
        self.stats.records_by_type["checkpoint"] = (
            self.stats.records_by_type.get("checkpoint", 0) + 1
        )
        self._tail_bytes += size
        while self._tail_bytes >= self.page_size:
            self._tail_bytes -= self.page_size
            self._write_page()
        self.force()

    def force(self) -> None:
        """Flush the partially filled tail page (commit/abort durability)."""
        self.stats.forces += 1
        if self._tail_bytes > 0:
            self._tail_bytes = 0
            self._write_page()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered in the unwritten tail page."""
        return self._tail_bytes

    def _write_page(self) -> None:
        self.stats.pages_written += 1
        self._iostats.record_write(IOCategory.APPLICATION)
