"""Crash recovery: rebuild a store from a logical redo log.

The write-ahead log in :mod:`repro.tx.wal` models logging *cost*; this
module adds the recovery semantics on top — a logical redo log that can
reconstruct the committed state of a database after a crash, in the spirit
of [KW93]'s atomic stable heap:

* :class:`RedoLog` captures full logical records of every transactional
  operation (begin / create / write / root / commit / abort);
* :func:`recover` replays the log into a fresh store, applying only the
  operations of transactions whose commit record made it to the log —
  a transaction with no commit record (in-flight at the crash, or aborted)
  contributes nothing, exactly like an abort;
* recovered stores are bit-compatible with a reference store that executed
  only the committed transactions (the tests assert byte-level equality of
  the logical state).

Garbage-collection state is *not* logged: a recovered database simply
starts with all garbage uncollected and its FGS counters reset, which is
what a real system reconstructs lazily. The oracle accounting is rebuilt
from the replayed ``dies`` annotations, so the policies work immediately
after recovery.

Long-running service mode adds **checkpoints** on top: a
:class:`CheckpointSnapshot` captures the committed logical state at a
quiescent point (no transaction open), :meth:`RedoLog.install_checkpoint`
truncates the log down to that one record, and :func:`recover` restores
the snapshot directly and replays only the suffix logged since — bounded
recovery work for unbounded streams. Unlike log replay, a checkpoint
preserves the store's dead/collected split and its policy clocks, so a
post-recovery service continues with the same garbage accounting the
pre-crash process had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectId, ObjectKind


@dataclass(frozen=True)
class CheckpointSnapshot:
    """The committed logical state of a store at one quiescent point.

    Captured by :func:`build_checkpoint` strictly *between* transactions, so
    the snapshot never contains uncommitted effects. Fields mirror exactly
    what :func:`recover` needs to rebuild an equivalent store:

    * ``objects`` — every stored object (live **and** dead-uncollected; the
      suffix's ``dies`` annotations and the policies' garbage accounting
      both assume dead objects still occupy the heap until collected);
    * ``pointers`` / ``roots`` — the full reachability graph;
    * ``unlinked`` — the allocation-pin set (created-but-unreferenced
      objects the collector must treat as roots);
    * the accounting clocks, so rate policies resume with continuous
      signals instead of a cold reset.

    ``event_index`` records the absolute stream position the checkpoint
    covers: a resumed service continues the event stream from here.
    """

    #: Absolute index of the next stream event after the checkpoint.
    event_index: int
    #: (oid, size, kind value, dead) for every object in the store.
    objects: tuple[tuple[ObjectId, int, str, bool], ...]
    #: (src, slot, target) for every pointer slot (target may be None).
    pointers: tuple[tuple[ObjectId, str, Optional[ObjectId]], ...]
    roots: tuple[ObjectId, ...]
    unlinked: tuple[ObjectId, ...]
    #: GarbageAccounts continuity: (total_generated, total_collected,
    #: undeclared).
    garbage: tuple[int, int, int] = (0, 0, 0)
    pointer_overwrites: int = 0
    pointer_stores: int = 0
    bytes_allocated_total: int = 0

    @property
    def estimated_bytes(self) -> int:
        """Modelled serialized size, for WAL cost accounting."""
        return (
            64
            + 48 * len(self.objects)
            + 24 * len(self.pointers)
            + 8 * (len(self.roots) + len(self.unlinked))
        )


def build_checkpoint(store: ObjectStore, event_index: int) -> CheckpointSnapshot:
    """Snapshot ``store``'s committed logical state at a quiescent point.

    The caller must guarantee no transaction is open (the service only
    checkpoints between transactions); everything in the store is then
    committed by construction.
    """
    objects = tuple(
        (oid, obj.size, obj.kind.value, obj.dead)
        for oid, obj in sorted(store.objects.items())
    )
    pointers = tuple(
        (oid, slot, target)
        for oid, obj in sorted(store.objects.items())
        for slot, target in sorted(obj.pointers.items())
    )
    return CheckpointSnapshot(
        event_index=event_index,
        objects=objects,
        pointers=pointers,
        roots=tuple(sorted(store.roots)),
        unlinked=tuple(sorted(store.unlinked)),
        garbage=(
            store.garbage.total_generated,
            store.garbage.total_collected,
            store.garbage.undeclared,
        ),
        pointer_overwrites=store.pointer_overwrites,
        pointer_stores=store.pointer_stores,
        bytes_allocated_total=store.bytes_allocated_total,
    )


@dataclass(frozen=True)
class RedoRecord:
    """One logical log record.

    ``kind`` is one of begin/commit/abort/create/write/root/checkpoint; the
    payload fields used depend on the kind.
    """

    kind: str
    txid: int
    oid: Optional[ObjectId] = None
    size: Optional[int] = None
    object_kind: Optional[ObjectKind] = None
    pointers: tuple[tuple[str, Optional[ObjectId]], ...] = ()
    slot: Optional[str] = None
    target: Optional[ObjectId] = None
    dies: tuple[ObjectId, ...] = ()
    #: Payload of ``kind="checkpoint"`` records.
    checkpoint: Optional[CheckpointSnapshot] = None


@dataclass
class RedoLog:
    """An append-only logical log of transactional operations.

    ``appended_total`` / ``truncated_total`` count records over the log's
    whole lifetime (they survive checkpoint truncation), so tests and soak
    drills can assert that post-checkpoint recovery replayed only the
    suffix logged since the last checkpoint.
    """

    records: list[RedoRecord] = field(default_factory=list)
    #: Lifetime records appended (monotone; unaffected by truncation).
    appended_total: int = 0
    #: Lifetime records dropped by truncation (checkpoints + uncommitted).
    truncated_total: int = 0
    #: Lifetime checkpoints installed (survives crash/recover cycles that
    #: share one log, so soak drills can count checkpoints drill-wide).
    checkpoints_installed: int = 0

    def append(self, record: RedoRecord) -> None:
        self.records.append(record)
        self.appended_total += 1

    def install_checkpoint(self, snapshot: CheckpointSnapshot) -> int:
        """Truncate the log down to one checkpoint record.

        Everything logged so far is subsumed by the snapshot (the caller
        checkpoints only at quiescent points, so there are no in-flight
        records to preserve). Returns the number of records dropped.
        """
        dropped = len(self.records)
        self.truncated_total += dropped
        self.records = []
        self.append(RedoRecord(kind="checkpoint", txid=0, checkpoint=snapshot))
        self.checkpoints_installed += 1
        return dropped

    def last_checkpoint(self) -> Optional[CheckpointSnapshot]:
        """The most recent installed checkpoint, if any."""
        for record in reversed(self.records):
            if record.kind == "checkpoint":
                return record.checkpoint
        return None

    @property
    def suffix_length(self) -> int:
        """Records logged since the last checkpoint (whole log if none)."""
        for index in range(len(self.records) - 1, -1, -1):
            if self.records[index].kind == "checkpoint":
                return len(self.records) - index - 1
        return len(self.records)

    # Convenience constructors used by LoggingTransactionManager.

    def begin(self, txid: int) -> None:
        self.append(RedoRecord(kind="begin", txid=txid))

    def commit(self, txid: int) -> None:
        self.append(RedoRecord(kind="commit", txid=txid))

    def abort(self, txid: int) -> None:
        self.append(RedoRecord(kind="abort", txid=txid))

    def create(
        self,
        txid: int,
        oid: ObjectId,
        size: int,
        object_kind: ObjectKind,
        pointers: tuple[tuple[str, Optional[ObjectId]], ...],
    ) -> None:
        self.append(
            RedoRecord(
                kind="create",
                txid=txid,
                oid=oid,
                size=size,
                object_kind=object_kind,
                pointers=pointers,
            )
        )

    def write(
        self,
        txid: int,
        src: ObjectId,
        slot: str,
        target: Optional[ObjectId],
        dies: Sequence[ObjectId],
    ) -> None:
        self.append(
            RedoRecord(
                kind="write",
                txid=txid,
                oid=src,
                slot=slot,
                target=target,
                dies=tuple(dies),
            )
        )

    def root(self, txid: int, oid: ObjectId) -> None:
        self.append(RedoRecord(kind="root", txid=txid, oid=oid))

    def committed_txids(self) -> set[int]:
        return {r.txid for r in self.records if r.kind == "commit"}

    def truncate_uncommitted(self) -> int:
        """Drop records of transactions that neither committed nor aborted.

        Used by crash–recover–continue drills before resuming a trace: the
        transaction in flight at the crash will be *re-executed* under the
        same txid, so its orphaned pre-crash records must not linger in the
        log (recovery would otherwise replay both the lost attempt and the
        re-execution). Returns the number of records dropped.
        """
        resolved = {
            r.txid for r in self.records if r.kind in ("commit", "abort")
        }
        before = len(self.records)
        self.records = [
            r
            for r in self.records
            if r.kind == "checkpoint" or r.txid in resolved
        ]
        dropped = before - len(self.records)
        self.truncated_total += dropped
        return dropped


@dataclass(frozen=True)
class RecoveryInfo:
    """What one :func:`recover_with_info` call actually did."""

    #: Log records inspected after the last checkpoint (replayed suffix).
    records_replayed: int
    #: True when a checkpoint snapshot seeded the store.
    from_checkpoint: bool
    #: The checkpoint's stream position (0 without a checkpoint).
    checkpoint_event_index: int
    #: Objects in the recovered store.
    objects: int


def _restore_checkpoint(
    snapshot: CheckpointSnapshot, store_config: Optional[StoreConfig]
) -> ObjectStore:
    """Rebuild a store equivalent to the one ``snapshot`` captured.

    Objects are created in oid order with empty pointer maps first (so no
    forward reference can fail validation), then the pointer graph is wired
    through ``write_pointer`` — which maintains the remembered-set index at
    every edge — then roots, deaths and allocation pins are reconciled and
    the accounting clocks restored verbatim. Physical placement may differ
    from the original store (recovery re-places first-fit), which is fine:
    the recovery contract covers logical state, and every consumer of
    placement (collector, selection) reads it fresh from the store.
    """
    store = ObjectStore(store_config)
    for oid, size, kind_value, _dead in snapshot.objects:
        store.create(size=size, kind=ObjectKind(kind_value), oid=oid)
    for src, slot, target in snapshot.pointers:
        store.write_pointer(src, slot, target)
    for oid in snapshot.roots:
        store.register_root(oid)
    for oid, _size, _kind, dead in snapshot.objects:
        if dead:
            store.declare_dead(oid)
    pinned = set(snapshot.unlinked)
    for oid in sorted(store.unlinked - pinned):
        store.release_pin(oid)
    # Replaying pointer wiring above advanced the clocks and (for dead
    # objects) the garbage totals; overwrite all of them with the captured
    # values so the policies see continuous signals, not replay artefacts.
    store.garbage.total_generated = snapshot.garbage[0]
    store.garbage.total_collected = snapshot.garbage[1]
    store.garbage.undeclared = snapshot.garbage[2]
    store.pointer_overwrites = snapshot.pointer_overwrites
    store.pointer_stores = snapshot.pointer_stores
    store.bytes_allocated_total = snapshot.bytes_allocated_total
    return store


def recover_with_info(
    log: RedoLog, store_config: Optional[StoreConfig] = None
) -> tuple[ObjectStore, RecoveryInfo]:
    """Recover a store from ``log`` and report how much work it took.

    With a checkpoint record in the log, the snapshot seeds the store and
    only the records *after* the last checkpoint are replayed — bounded
    recovery for unbounded streams. Without one this is full-log replay.
    Records of transactions without a commit record — aborted or in flight
    at the crash — are skipped entirely. Replay order is log order, which
    is execution order for a single-client system, so every pointer target
    already exists when it is written.
    """
    records = log.records
    start = 0
    from_checkpoint = False
    checkpoint_event_index = 0
    for index in range(len(records) - 1, -1, -1):
        if records[index].kind == "checkpoint":
            start = index + 1
            from_checkpoint = True
            snapshot = records[index].checkpoint
            assert snapshot is not None
            checkpoint_event_index = snapshot.event_index
            break
    if from_checkpoint:
        store = _restore_checkpoint(snapshot, store_config)
    else:
        store = ObjectStore(store_config)
    suffix = records[start:]
    # Commit-scoped sequential replay: operations buffer under their
    # transaction's *current* begin/commit bracket and apply at the commit
    # record. A transaction id may legitimately recur in one log (each
    # crash/resume cycle restarts the auto-commit txid counter), so a
    # whole-suffix committed-txid set would wrongly replay an in-flight
    # transaction whose id an earlier, committed incarnation used; the
    # bracket scoping keeps each incarnation separate. Transactions still
    # open at the end of the log — in flight at the crash — are dropped.
    open_tx: dict[int, list[RedoRecord]] = {}
    for record in suffix:
        kind = record.kind
        if kind == "checkpoint":
            continue
        if kind == "begin":
            open_tx[record.txid] = []
        elif kind == "abort":
            open_tx.pop(record.txid, None)
        elif kind == "commit":
            for op in open_tx.pop(record.txid, ()):
                if op.kind == "create":
                    store.create(
                        size=op.size,
                        kind=op.object_kind or ObjectKind.GENERIC,
                        pointers=dict(op.pointers),
                        oid=op.oid,
                    )
                elif op.kind == "write":
                    store.write_pointer(
                        op.oid, op.slot, op.target, dies=op.dies
                    )
                elif op.kind == "root":
                    store.register_root(op.oid)
        else:
            bucket = open_tx.get(record.txid)
            if bucket is not None:
                bucket.append(record)
    info = RecoveryInfo(
        records_replayed=len(suffix),
        from_checkpoint=from_checkpoint,
        checkpoint_event_index=checkpoint_event_index,
        objects=len(store.objects),
    )
    return store, info


def recover(log: RedoLog, store_config: Optional[StoreConfig] = None) -> ObjectStore:
    """Recover a store from ``log`` (see :func:`recover_with_info`)."""
    store, _ = recover_with_info(log, store_config)
    return store
