"""Crash recovery: rebuild a store from a logical redo log.

The write-ahead log in :mod:`repro.tx.wal` models logging *cost*; this
module adds the recovery semantics on top — a logical redo log that can
reconstruct the committed state of a database after a crash, in the spirit
of [KW93]'s atomic stable heap:

* :class:`RedoLog` captures full logical records of every transactional
  operation (begin / create / write / root / commit / abort);
* :func:`recover` replays the log into a fresh store, applying only the
  operations of transactions whose commit record made it to the log —
  a transaction with no commit record (in-flight at the crash, or aborted)
  contributes nothing, exactly like an abort;
* recovered stores are bit-compatible with a reference store that executed
  only the committed transactions (the tests assert byte-level equality of
  the logical state).

Garbage-collection state is *not* logged: a recovered database simply
starts with all garbage uncollected and its FGS counters reset, which is
what a real system reconstructs lazily. The oracle accounting is rebuilt
from the replayed ``dies`` annotations, so the policies work immediately
after recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectId, ObjectKind


@dataclass(frozen=True)
class RedoRecord:
    """One logical log record.

    ``kind`` is one of begin/commit/abort/create/write/root; the payload
    fields used depend on the kind.
    """

    kind: str
    txid: int
    oid: Optional[ObjectId] = None
    size: Optional[int] = None
    object_kind: Optional[ObjectKind] = None
    pointers: tuple[tuple[str, Optional[ObjectId]], ...] = ()
    slot: Optional[str] = None
    target: Optional[ObjectId] = None
    dies: tuple[ObjectId, ...] = ()


@dataclass
class RedoLog:
    """An append-only logical log of transactional operations."""

    records: list[RedoRecord] = field(default_factory=list)

    def append(self, record: RedoRecord) -> None:
        self.records.append(record)

    # Convenience constructors used by LoggingTransactionManager.

    def begin(self, txid: int) -> None:
        self.append(RedoRecord(kind="begin", txid=txid))

    def commit(self, txid: int) -> None:
        self.append(RedoRecord(kind="commit", txid=txid))

    def abort(self, txid: int) -> None:
        self.append(RedoRecord(kind="abort", txid=txid))

    def create(
        self,
        txid: int,
        oid: ObjectId,
        size: int,
        object_kind: ObjectKind,
        pointers: tuple[tuple[str, Optional[ObjectId]], ...],
    ) -> None:
        self.append(
            RedoRecord(
                kind="create",
                txid=txid,
                oid=oid,
                size=size,
                object_kind=object_kind,
                pointers=pointers,
            )
        )

    def write(
        self,
        txid: int,
        src: ObjectId,
        slot: str,
        target: Optional[ObjectId],
        dies: Sequence[ObjectId],
    ) -> None:
        self.append(
            RedoRecord(
                kind="write",
                txid=txid,
                oid=src,
                slot=slot,
                target=target,
                dies=tuple(dies),
            )
        )

    def root(self, txid: int, oid: ObjectId) -> None:
        self.append(RedoRecord(kind="root", txid=txid, oid=oid))

    def committed_txids(self) -> set[int]:
        return {r.txid for r in self.records if r.kind == "commit"}

    def truncate_uncommitted(self) -> int:
        """Drop records of transactions that neither committed nor aborted.

        Used by crash–recover–continue drills before resuming a trace: the
        transaction in flight at the crash will be *re-executed* under the
        same txid, so its orphaned pre-crash records must not linger in the
        log (recovery would otherwise replay both the lost attempt and the
        re-execution). Returns the number of records dropped.
        """
        resolved = {
            r.txid for r in self.records if r.kind in ("commit", "abort")
        }
        before = len(self.records)
        self.records = [r for r in self.records if r.txid in resolved]
        return before - len(self.records)


def recover(log: RedoLog, store_config: Optional[StoreConfig] = None) -> ObjectStore:
    """Replay the committed transactions of ``log`` into a fresh store.

    Records of transactions without a commit record — aborted or in flight
    at the crash — are skipped entirely. Replay order is log order, which
    is execution order for a single-client system, so every pointer target
    already exists when it is written.
    """
    committed = log.committed_txids()
    store = ObjectStore(store_config)
    for record in log.records:
        if record.txid not in committed:
            continue
        if record.kind == "create":
            store.create(
                size=record.size,
                kind=record.object_kind or ObjectKind.GENERIC,
                pointers=dict(record.pointers),
                oid=record.oid,
            )
        elif record.kind == "write":
            store.write_pointer(
                record.oid, record.slot, record.target, dies=record.dies
            )
        elif record.kind == "root":
            store.register_root(record.oid)
        # begin/commit/abort records carry no state to replay.
    return store
