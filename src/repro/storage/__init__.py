"""Storage substrate: object model, partitions, buffer pool, heap, I/O stats."""

from repro.storage.buffer import (
    DEFAULT_BUFFER_PAGES,
    DEFAULT_PAGE_SIZE,
    BufferPool,
    BufferStats,
    PageId,
)
from repro.storage.heap import GarbageAccounts, ObjectStore, StoreConfig, StoreError
from repro.storage.iostats import CollectionIORecord, IOCategory, IOLedger, IOStats
from repro.storage.object_model import ObjectId, ObjectKind, StoredObject
from repro.storage.partition import (
    Partition,
    PartitionFullError,
    PartitionId,
    Placement,
)
from repro.storage.validation import (
    StoreInvariantError,
    StoreValidator,
    ValidationReport,
    validate_store,
)

__all__ = [
    "BufferPool",
    "BufferStats",
    "CollectionIORecord",
    "DEFAULT_BUFFER_PAGES",
    "DEFAULT_PAGE_SIZE",
    "GarbageAccounts",
    "IOCategory",
    "IOLedger",
    "IOStats",
    "ObjectId",
    "ObjectKind",
    "ObjectStore",
    "PageId",
    "Partition",
    "PartitionFullError",
    "PartitionId",
    "Placement",
    "StoreConfig",
    "StoreError",
    "StoreInvariantError",
    "StoreValidator",
    "StoredObject",
    "ValidationReport",
    "validate_store",
]
