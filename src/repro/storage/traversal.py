"""Shared pointer-graph traversal.

Both reachability paths of the collector — the partition-local Cheney trace
(:meth:`repro.gc.collector.CopyingCollector.collect`) and the whole-heap
marking pass (:meth:`~repro.storage.heap.ObjectStore.reachable_from`, used
by ``collect_global`` and the verification oracles) — are the same
breadth-first scan differing only in their traversal domain. This module
holds the single implementation; before it existed the two copies in
``collector.py`` and ``heap.py`` had to be kept in lockstep by hand.
"""

from __future__ import annotations

from collections import deque
from typing import Container, Iterable, Mapping, Optional

from repro.storage.object_model import ObjectId, StoredObject


def breadth_first_order(
    objects: Mapping[ObjectId, StoredObject],
    roots: Iterable[ObjectId],
    within: Optional[Container[ObjectId]] = None,
) -> list[ObjectId]:
    """Deterministic breadth-first traversal of the heap's pointer graph.

    Args:
        objects: The store's object table (oid → object).
        roots: Traversal starts here, in the given order — callers wanting
            deterministic copy order pass roots pre-sorted. Roots outside
            the domain are skipped (partitioned collection's conservative
            root sets can mention ids filtered by ``within``).
        within: Optional traversal domain — only members are visited and
            enqueued (the collector passes a partition's residents, so
            pointers leaving the partition are not traversed, §3.1).
            ``None`` traverses the whole object table.

    Returns:
        Every reached object id, in visit (Cheney copy) order.
    """
    domain: Container[ObjectId] = objects if within is None else within
    seen: set[ObjectId] = set()
    seen_add = seen.add
    queue: deque[ObjectId] = deque()
    queue_append = queue.append
    for oid in roots:
        if oid in domain and oid not in seen:
            seen_add(oid)
            queue_append(oid)
    order: list[ObjectId] = []
    order_append = order.append
    popleft = queue.popleft
    # Hot loop: the per-edge test is two set membership checks with every
    # method hoisted into a local — this scan dominates collection cost.
    while queue:
        oid = popleft()
        order_append(oid)
        for target in objects[oid].pointers.values():
            if target is not None and target not in seen and target in domain:
                seen_add(target)
                queue_append(target)
    return order
