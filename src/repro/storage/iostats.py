"""I/O operation accounting, split between application and collector.

The SAIO policy (§2.2) controls the *fraction* of I/O operations performed on
behalf of garbage collection, so the store keeps two ledgers: ``APPLICATION``
and ``COLLECTOR``. Every page read or write is charged to exactly one ledger.

:class:`IOStats` also keeps a per-collection history of both ledgers, which is
what SAIO's ``c_hist`` history window is computed over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class IOCategory(enum.Enum):
    """Which ledger an I/O operation is charged to."""

    APPLICATION = "application"
    COLLECTOR = "collector"


@dataclass
class IOLedger:
    """Read/write counters for one I/O category."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def copy(self) -> "IOLedger":
        return IOLedger(reads=self.reads, writes=self.writes)


@dataclass
class CollectionIORecord:
    """I/O activity between two successive collections.

    ``app`` counts application I/O performed since the previous collection
    finished; ``gc`` counts the I/O the collection itself performed. Together
    these are the ``AppIO`` / ``GCIO`` interval histories of §2.2.
    """

    collection_number: int
    app: int
    gc: int

    @property
    def total(self) -> int:
        return self.app + self.gc

    @property
    def gc_fraction(self) -> float:
        """GC share of the interval's I/O (0 when the interval saw no I/O)."""
        if self.total == 0:
            return 0.0
        return self.gc / self.total


class IOStats:
    """Central I/O counter with per-collection interval history.

    ``fault_hook`` is the storage layer's fault-injection point: when set
    (see :meth:`repro.storage.heap.ObjectStore.attach_fault_injector`), it
    is called as ``hook(site, category)`` with site ``"io.read"`` or
    ``"io.write"`` *before* the operation is counted, and may raise
    :class:`~repro.faults.injector.InjectedFaultError` to fail it.
    """

    def __init__(self) -> None:
        self._ledgers = {category: IOLedger() for category in IOCategory}
        self.history: list[CollectionIORecord] = []
        self._app_at_last_mark = 0
        self._gc_at_last_mark = 0
        #: Optional fault-injection hook: ``hook("io.read"|"io.write", category)``.
        self.fault_hook = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_read(self, category: IOCategory, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"I/O count must be non-negative, got {count}")
        if self.fault_hook is not None:
            self.fault_hook("io.read", category)
        self._ledgers[category].reads += count

    def record_write(self, category: IOCategory, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"I/O count must be non-negative, got {count}")
        if self.fault_hook is not None:
            self.fault_hook("io.write", category)
        self._ledgers[category].writes += count

    def mark_collection(self) -> CollectionIORecord:
        """Close the current inter-collection interval and start a new one.

        Called by the simulator immediately after each collection completes.
        """
        app_now = self.application_total
        gc_now = self.collector_total
        record = CollectionIORecord(
            collection_number=len(self.history),
            app=app_now - self._app_at_last_mark,
            gc=gc_now - self._gc_at_last_mark,
        )
        self.history.append(record)
        self._app_at_last_mark = app_now
        self._gc_at_last_mark = gc_now
        return record

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def application(self) -> IOLedger:
        return self._ledgers[IOCategory.APPLICATION]

    @property
    def collector(self) -> IOLedger:
        return self._ledgers[IOCategory.COLLECTOR]

    @property
    def application_total(self) -> int:
        return self.application.total

    @property
    def collector_total(self) -> int:
        return self.collector.total

    @property
    def grand_total(self) -> int:
        return self.application_total + self.collector_total

    @property
    def collector_fraction(self) -> float:
        """Cumulative GC share of all I/O so far (0 when no I/O yet)."""
        if self.grand_total == 0:
            return 0.0
        return self.collector_total / self.grand_total

    def as_metrics(self) -> dict:
        """Flat metric name → value dict (for the observability registry)."""
        return {
            "app.reads": self.application.reads,
            "app.writes": self.application.writes,
            "gc.reads": self.collector.reads,
            "gc.writes": self.collector.writes,
            "total": self.grand_total,
            "gc_fraction": self.collector_fraction,
        }

    # ------------------------------------------------------------------
    # Windowed views (for SAIO's history parameter)
    # ------------------------------------------------------------------

    def window(self, collections: int) -> tuple[int, int]:
        """Sum (app, gc) I/O over the last ``collections`` closed intervals.

        ``collections == 0`` returns ``(0, 0)``: SAIO with ``c_hist = 0`` uses
        only the prediction for the upcoming interval.
        """
        if collections < 0:
            raise ValueError(f"window size must be non-negative, got {collections}")
        if collections == 0 or not self.history:
            return (0, 0)
        recent = self.history[-collections:]
        return (sum(r.app for r in recent), sum(r.gc for r in recent))

    def since_last_collection(self) -> tuple[int, int]:
        """(app, gc) I/O performed since the last ``mark_collection`` call."""
        return (
            self.application_total - self._app_at_last_mark,
            self.collector_total - self._gc_at_last_mark,
        )
