"""The object store: a partitioned, paged database heap.

This is the substrate every policy in the reproduction runs against. It owns

* the set of fixed-size partitions (grown on demand, never collected merely
  because space ran out — §3.1 decouples growth from collection),
* object placements (partition + byte offset), from which page residency is
  derived,
* the LRU buffer pool through which all application page accesses flow,
* remembered sets (incoming cross-partition references per partition),
* pointer-overwrite counters (global, as the policies' time base, and per
  partition as the FGS state of §2.4 and the UPDATEDPOINTER selection input),
* exact garbage accounting (``TotGarb`` / ``TotColl`` / ``ActGarb`` of §2.3),
  fed by the workload's death annotations and consumed by the oracle
  estimator and by the evaluation metrics.

The store performs *application* operations (create/access/update/pointer
write). The collector lives in :mod:`repro.gc.collector` and manipulates the
store through the narrow support API at the bottom of this class.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.storage.buffer import (
    DEFAULT_BUFFER_PAGES,
    DEFAULT_PAGE_SIZE,
    BufferPool,
    PageId,
)
from repro.storage.iostats import IOCategory, IOStats
from repro.storage.object_model import ObjectId, ObjectKind, StoredObject
from repro.storage.objtable import DENSE_CEILING, PlacementTable
from repro.storage.partition import Partition, PartitionId, Placement
from repro.storage.traversal import breadth_first_order

try:  # optional fast path for applying precomputed compaction layouts
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Stale (zero-free) entries tolerated on the open-partition list before a
#: prune pass rebuilds it; small enough that first-fit scans stay short,
#: large enough that back-to-back partition fills don't each pay a rebuild.
_OPEN_LIST_STALE_LIMIT = 16


@dataclass
class CompactionPlan:
    """Precomputed pure derivations of one ``compact_partition`` call.

    Everything :meth:`ObjectStore.compact_partition` derives read-only
    from current state — the survivor set, the reclaimed list, and the
    post-compaction layout (new offset per survivor) — captured so the
    parallel scheduler's workers can compute it *outside* the collection
    pause. A plan is only valid while the victim's trace epoch and the
    global compaction epoch are unchanged (the scheduler validates both
    before use); applying a validated plan is byte-identical to the
    inline derivation because every input it froze is provably the same.
    """

    #: Survivors in copy order (must equal the ``survivors`` argument the
    #: plan was built from).
    survivors: list[ObjectId]
    survivor_set: set[ObjectId]
    #: Residents to reclaim, in the residents-set iteration order the
    #: inline path would produce over the identical set state.
    reclaimed: list[ObjectId]
    #: Partition fill after relocation (sum of survivor sizes).
    fill: int
    #: Dense-column survivors and their new offsets (numpy int64 arrays
    #: when numpy is present, plain lists otherwise).
    dense_oids: Any
    dense_offs: Any
    #: Overflow-dict survivors: ``(oid, (pid, new_offset, size))``.
    overflow: list[tuple[ObjectId, tuple[int, int, int]]]


@dataclass(frozen=True)
class StoreConfig:
    """Geometry and accounting options for the object store.

    Attributes:
        page_size: Bytes per page (paper: 8 KB).
        partition_pages: Pages per partition (paper: 12, i.e. 96 KB).
        buffer_pages: Buffer pool capacity in pages (paper: one partition's
            worth, 12).
        db_size_mode: How ``db_size`` is measured. ``"allocated"`` counts the
            bump-allocated bytes in all partitions (live + uncollected
            garbage); ``"physical"`` counts full partition capacities. The
            paper's garbage percentages are relative fractions, for which the
            allocated measure is the meaningful denominator; physical mode is
            provided for storage-efficiency studies.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    partition_pages: int = DEFAULT_BUFFER_PAGES
    buffer_pages: int = DEFAULT_BUFFER_PAGES
    db_size_mode: str = "allocated"

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.partition_pages <= 0:
            raise ValueError("partition_pages must be positive")
        if self.buffer_pages <= 0:
            raise ValueError("buffer_pages must be positive")
        if self.db_size_mode not in ("allocated", "physical"):
            raise ValueError(
                f"db_size_mode must be 'allocated' or 'physical', got {self.db_size_mode!r}"
            )

    @property
    def partition_size(self) -> int:
        """Bytes per partition."""
        return self.page_size * self.partition_pages


@dataclass
class GarbageAccounts:
    """Exact (oracle) garbage bookkeeping, in bytes.

    ``actual`` is the paper's ``ActGarb = TotGarb - TotColl``. ``undeclared``
    counts bytes the collector reclaimed without the workload having declared
    them dead first; a correct workload generator keeps it at zero (tests
    assert this), but the store tolerates it by folding such bytes into both
    totals so the identity above always holds.
    """

    total_generated: int = 0  # TotGarb(t)
    total_collected: int = 0  # TotColl(t)
    undeclared: int = 0

    @property
    def actual(self) -> int:
        return self.total_generated - self.total_collected


class StoreError(Exception):
    """Raised on misuse of the object store (unknown oid, double create...)."""


class ObjectStore:
    """A partitioned object database heap with trace-driven semantics."""

    def __init__(self, config: StoreConfig | None = None, iostats: IOStats | None = None) -> None:
        self.config = config or StoreConfig()
        self.iostats = iostats or IOStats()
        self.buffer = BufferPool(self.config.buffer_pages, self.iostats)
        self.partitions: list[Partition] = []
        self.objects: dict[ObjectId, StoredObject] = {}
        #: Flat structure-of-arrays placement columns (oid → partition /
        #: offset / size); mapping-compatible with the dict it replaced.
        self.placements = PlacementTable()
        self.roots: set[ObjectId] = set()
        # First-fit accelerator: per-partition free bytes plus the ascending
        # list of partitions that still have room. The list may carry stale
        # (full) entries between prune passes; scans skip them by free-byte
        # check, which is exact because object sizes are >= 1.
        self._partition_free: list[int] = []
        self._open_partitions: list[PartitionId] = []
        self._open_set: set[PartitionId] = set()
        self._open_stale = 0
        #: Allocation pinning: objects created but not yet referenced by any
        #: pointer or root registration. The application still holds a handle
        #: to such objects (it is about to link them), so the collector must
        #: treat them as roots — otherwise a collection firing between a
        #: create and the pointer write that links it could reclaim live data.
        self.unlinked: set[ObjectId] = set()
        self.garbage = GarbageAccounts()
        #: Oracle per-partition garbage, in bytes (dead, not yet collected).
        self.dead_bytes: dict[PartitionId, int] = {}
        #: Global pointer-overwrite counter — the policies' overwrite clock.
        self.pointer_overwrites = 0
        #: Monotone count of bytes ever allocated by the application — the
        #: allocation clock used by [YNY94]-style trigger policies.
        self.bytes_allocated_total = 0
        #: Pointer writes that did not replace an existing non-null pointer.
        self.pointer_stores = 0
        self._next_oid: ObjectId = 1
        # Running totals so db_size stays O(1); it is sampled at every event.
        self._allocated_bytes = 0
        self._physical_bytes = 0
        # Local import: repro.gc.remembered lives in the gc package, whose
        # __init__ imports the collector, which imports this module — a
        # module-scope import here would close that cycle mid-initialisation.
        from repro.gc.remembered import RememberedSetIndex

        #: Incremental per-partition frontier index (roots, allocation pins,
        #: distinct boundary sources) — kept in O(1) step by every mutator
        #: below, consumed by ``partition_roots`` / ``external_source_pages``.
        self.remembered = RememberedSetIndex()
        #: Per-partition trace epochs: bumped by every mutation that could
        #: change a partition's collection outcome — its resident set, its
        #: residents' pointer slots, or its conservative frontier (roots,
        #: allocation pins, remembered incoming references). The parallel
        #: collection scheduler (:mod:`repro.gc.parallel`) validates
        #: speculative traces against these counters: an unchanged epoch
        #: proves a pre-computed survivor set is still exact.
        self.trace_epochs: list[int] = []
        #: Bumped once per partition compaction. Compaction relocates every
        #: survivor, which moves the fix-up pages of *other* partitions whose
        #: boundary sources live here — one global counter conservatively
        #: invalidates every outstanding speculative trace.
        self.compaction_epoch = 0

    # ------------------------------------------------------------------
    # Application operations
    # ------------------------------------------------------------------

    def create(
        self,
        size: int,
        kind: ObjectKind = ObjectKind.GENERIC,
        pointers: Optional[dict[str, Optional[ObjectId]]] = None,
        oid: Optional[ObjectId] = None,
    ) -> ObjectId:
        """Allocate a new object and initialise its pointer slots.

        Initial pointer values are *stores*, not overwrites — they replace
        nothing, so they advance neither the overwrite clock nor any
        partition's FGS counter.

        Returns the new object's id.
        """
        if oid is None:
            oid = self._next_oid
        if oid in self.objects:
            raise StoreError(f"object {oid} already exists")
        self._next_oid = max(self._next_oid, oid + 1)

        obj = StoredObject(oid=oid, size=size, kind=kind)
        pid, offset = self._place(oid, size)
        self.bytes_allocated_total += size
        self.objects[oid] = obj
        self.placements.put(oid, pid, offset, size)
        self.unlinked.add(oid)
        self.remembered.pin(pid, oid)
        self.trace_epochs[pid] += 1
        self._touch_object_pages(oid, IOCategory.APPLICATION, dirty=True)

        if pointers:
            for slot, target in pointers.items():
                if target is not None:
                    self._validate_target(target)
                obj.pointers[slot] = target
                if target is not None:
                    if target in self.unlinked:
                        self._unpin(target)
                    self._remember_edge(oid, target)
        return oid

    def access(self, oid: ObjectId) -> StoredObject:
        """Read an object (touches its pages clean through the buffer)."""
        obj = self._require(oid)
        self._touch_object_pages(oid, IOCategory.APPLICATION, dirty=False)
        return obj

    def update(self, oid: ObjectId) -> None:
        """Modify an object's non-pointer data (dirty page touch only)."""
        self._require(oid)
        self._touch_object_pages(oid, IOCategory.APPLICATION, dirty=True)

    def write_pointer(
        self,
        src: ObjectId,
        slot: str,
        target: Optional[ObjectId],
        dies: Sequence[ObjectId] = (),
    ) -> None:
        """Write pointer ``slot`` of ``src`` to ``target``.

        If the slot previously held a non-null pointer this is an *overwrite*:
        the global overwrite clock advances and the FGS counter of the
        partition holding the old target is incremented (§2.4: "FGS values of
        partitions are increased when pointers into those partitions are
        overwritten").

        ``dies`` lists objects that become globally unreachable as a result of
        this write; the workload generator computes it constructively and the
        store uses it only for oracle accounting — never for collection.
        """
        src_obj = self._require(src)
        if target is not None:
            self._validate_target(target)

        old = src_obj.pointers.get(slot)
        src_obj.pointers[slot] = target
        src_pid = self.placements.part_of(src)
        if src_pid >= 0:
            self.trace_epochs[src_pid] += 1
        self._touch_object_pages(src, IOCategory.APPLICATION, dirty=True)

        if old is not None:
            self.pointer_overwrites += 1
            old_pid = self.placements.part_of(old)
            if old_pid >= 0:
                self.partitions[old_pid].pointer_overwrites += 1
            self._forget_edge(src, old)
        else:
            self.pointer_stores += 1

        if target is not None:
            if target in self.unlinked:
                self._unpin(target)
            self._remember_edge(src, target)

        for victim in dies:
            self._declare_dead(victim)

    def register_root(self, oid: ObjectId) -> None:
        """Add an object to the database's persistent root set."""
        self._require(oid)
        pid = self.placements.part_of(oid)
        self.roots.add(oid)
        self.remembered.add_root(pid, oid)
        if pid >= 0:
            self.trace_epochs[pid] += 1
        if oid in self.unlinked:
            self._unpin(oid)

    def declare_dead(self, oid: ObjectId) -> None:
        """Mark ``oid`` as oracle-dead without a pointer overwrite.

        Checkpoint restoration (:mod:`repro.tx.recovery`) uses this to
        reinstate the dead/live split a snapshot captured; missing or
        already-dead oids are tolerated, matching ``dies`` semantics.
        """
        self._declare_dead(oid)

    def release_pin(self, oid: ObjectId) -> None:
        """Drop ``oid``'s allocation pin without referencing it.

        Checkpoint restoration uses this for objects that historically lost
        their last incoming pointer: rebuilding the graph leaves them
        pinned (never referenced during replay) even though the original
        store had unpinned them. No-op when ``oid`` is not pinned.
        """
        if oid in self.unlinked:
            self._unpin(oid)

    # ------------------------------------------------------------------
    # Transaction-rollback support
    #
    # These primitives exist for the transaction manager (repro.tx): they
    # physically revert application operations without advancing the
    # overwrite clock or FGS counters — an aborted transaction must leave
    # no trace in the policies' garbage-creation signals.
    # ------------------------------------------------------------------

    def undo_pointer_write(
        self,
        src: ObjectId,
        slot: str,
        old_target: Optional[ObjectId],
        slot_existed: bool,
    ) -> None:
        """Physically revert one pointer write (rollback).

        Restores the slot's previous value (or removes a slot that had never
        been written), fixes remembered sets, and dirties the page — rollback
        is real I/O — but records neither an overwrite nor a store.
        """
        src_obj = self._require(src)
        current = src_obj.pointers.get(slot)
        if current is not None:
            self._forget_edge(src, current)
        if slot_existed:
            src_obj.pointers[slot] = old_target
            if old_target is not None:
                self._remember_edge(src, old_target)
        else:
            src_obj.pointers.pop(slot, None)
        src_pid = self.placements.part_of(src)
        if src_pid >= 0:
            self.trace_epochs[src_pid] += 1
        self._touch_object_pages(src, IOCategory.APPLICATION, dirty=True)

    def resurrect(self, oid: ObjectId) -> None:
        """Revert a death declaration (the disconnecting write was undone)."""
        obj = self._require(oid)
        if not obj.dead:
            raise StoreError(f"object {oid} is not dead; cannot resurrect")
        obj.dead = False
        self.garbage.total_generated -= obj.size
        pid = self.partition_of(oid)
        self.dead_bytes[pid] = self.dead_bytes.get(pid, 0) - obj.size

    def expunge(self, oid: ObjectId) -> None:
        """Remove an object whose creation is being rolled back.

        Unlike collector reclamation this is not garbage collection — the
        allocation never committed — so no garbage totals change. The
        object's space is only recovered at the partition's next compaction
        (bump allocation cannot un-allocate mid-extent).
        """
        obj = self._require(oid)
        if obj.dead:
            raise StoreError(f"object {oid} is dead; expected a live rollback target")
        placement = self.placements.pop(oid)
        del self.objects[oid]
        partition = self.partitions[placement.partition]
        partition.residents.discard(oid)
        if placement.offset + placement.size == partition.fill:
            # The common rollback case: the newest allocation — reclaim the
            # tail of the bump extent directly.
            partition.fill -= placement.size
            self._allocated_bytes -= placement.size
            self._partition_free[partition.pid] += placement.size
            self._reopen_partition(partition.pid)
        for target in obj.targets():
            self._forget_edge(oid, target)
        dropped = partition.drop_incoming(oid)
        if dropped:
            self.remembered.forget_sources(placement.partition, dropped)
        self.roots.discard(oid)
        self.unlinked.discard(oid)
        self.remembered.drop_object(placement.partition, oid)
        self.trace_epochs[placement.partition] += 1

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def attach_fault_injector(self, injector) -> None:
        """Wire a :class:`~repro.faults.injector.FaultInjector` into the
        storage layer.

        After attachment every I/O operation passes through the injector's
        ``io.read`` / ``io.write`` sites and every dirty page write-back
        through its ``page.write`` site, so plans can fail individual
        storage operations or tear page writes deterministically.
        """
        self.iostats.fault_hook = injector.fire_io
        self.buffer.write_hook = injector.fire_page_write

    # ------------------------------------------------------------------
    # Geometry and metrics
    # ------------------------------------------------------------------

    def partition_of(self, oid: ObjectId) -> PartitionId:
        """The partition currently holding ``oid``."""
        pid = self.placements.part_of(oid)
        if pid < 0:
            raise StoreError(f"object {oid} has no placement")
        return pid

    def placement_of(self, oid: ObjectId) -> Placement:
        """Current placement (partition, offset, size) of ``oid``."""
        return self._placement(oid)

    def pages_of(self, oid: ObjectId) -> list[PageId]:
        """Page ids the object currently spans."""
        placement = self._placement(oid)
        return [
            (placement.partition, index)
            for index in placement.pages(self.config.page_size)
        ]

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def db_size(self) -> int:
        """Database size per the configured measure (see :class:`StoreConfig`)."""
        if self.config.db_size_mode == "physical":
            return self._physical_bytes
        return self._allocated_bytes

    @property
    def live_bytes(self) -> int:
        """Bytes of objects not declared dead."""
        return sum(obj.size for obj in self.objects.values() if not obj.dead)

    @property
    def actual_garbage_bytes(self) -> int:
        """Oracle ``ActGarb(t)``: declared-dead bytes not yet reclaimed."""
        return self.garbage.actual

    @property
    def garbage_fraction(self) -> float:
        """Oracle garbage percentage of the database (0 when the DB is empty)."""
        size = self.db_size
        if size == 0:
            return 0.0
        return self.actual_garbage_bytes / size

    def partition_garbage_bytes(self, pid: PartitionId) -> int:
        """Oracle declared-dead bytes resident in partition ``pid``."""
        return self.dead_bytes.get(pid, 0)

    # ------------------------------------------------------------------
    # Collector support API
    # ------------------------------------------------------------------

    def partition_roots(self, pid: PartitionId) -> set[ObjectId]:
        """Conservative root set for collecting partition ``pid``.

        Roots are residents that are (a) in the database root set, or (b)
        remembered as targets of any external reference. External referents
        may themselves be garbage in other partitions — that conservatism is
        inherent to partitioned collection and produces realistic floating
        garbage.

        Derived from the incremental index in O(partition roots + boundary):
        the index partitions the global root / pin sets, and every
        ``incoming`` key is an externally referenced resident (``forget``
        prunes empty entries, reclamation drops entries of reclaimed
        residents). ``reachability="full"`` recomputes the same set from a
        whole-heap scan (:func:`repro.gc.remembered.full_scan_frontier`).
        """
        remembered = self.remembered
        roots = set(remembered.roots_in(pid))
        roots |= remembered.pins_in(pid)
        roots.update(self.partitions[pid].incoming)
        return roots

    def intra_partition_targets(self, oid: ObjectId, pid: PartitionId) -> Iterable[ObjectId]:
        """Non-null pointer targets of ``oid`` that reside in partition ``pid``.

        The collector traverses only these (§3.1: "pointers leaving the
        collected partition are not traversed").
        """
        obj = self._require(oid)
        part_of = self.placements.part_of
        for target in obj.targets():
            if part_of(target) == pid:
                yield target

    def plan_compaction(
        self, pid: PartitionId, survivors: Sequence[ObjectId]
    ) -> CompactionPlan:
        """Precompute what :meth:`compact_partition` derives from state.

        Read-only — safe to run on a speculative-trace worker thread while
        replay continues. The survivor layout reproduces the inline bump
        loop exactly (prefix sums of sizes in copy order); the reclaimed
        list iterates the residents set just as the inline path would, so
        applying the plan against unchanged epochs leaves every structure
        with an identical mutation history.
        """
        partition = self.partitions[pid]
        survivor_set = set(survivors)
        unknown = survivor_set - partition.residents
        if unknown:
            raise StoreError(
                f"survivors {sorted(unknown)} are not residents of partition {pid}"
            )
        reclaimed = [oid for oid in partition.residents if oid not in survivor_set]
        objects = self.objects
        dense_oids: list[int] = []
        dense_offs: list[int] = []
        overflow: list[tuple[ObjectId, tuple[int, int, int]]] = []
        cursor = 0
        for oid in survivors:
            size = objects[oid].size
            # Classification by DENSE_CEILING (not current column length)
            # is stable: a resident survivor already has its placement in
            # whichever representation its oid selects.
            if 0 <= oid < DENSE_CEILING:
                dense_oids.append(oid)
                dense_offs.append(cursor)
            else:
                overflow.append((oid, (pid, cursor, size)))
            cursor += size
        if _np is not None:
            dense_oids = _np.asarray(dense_oids, dtype=_np.int64)
            dense_offs = _np.asarray(dense_offs, dtype=_np.int64)
        return CompactionPlan(
            survivors=list(survivors),
            survivor_set=survivor_set,
            reclaimed=reclaimed,
            fill=cursor,
            dense_oids=dense_oids,
            dense_offs=dense_offs,
            overflow=overflow,
        )

    def compact_partition(
        self,
        pid: PartitionId,
        survivors: Sequence[ObjectId],
        plan: Optional[CompactionPlan] = None,
    ) -> int:
        """Rewrite partition ``pid`` to contain exactly ``survivors`` in order.

        Every resident not in ``survivors`` is reclaimed. Returns the number
        of bytes reclaimed. The caller (the collector) is responsible for
        charging I/O and invalidating buffered pages.

        ``plan`` — a :class:`CompactionPlan` built by :meth:`plan_compaction`
        from these exact survivors and *validated against unchanged trace
        epochs* — skips the in-pause re-derivation of the survivor set,
        reclaimed list and layout. Survivors keep their partition and size
        columns through a compaction, so applying the plan reduces the
        relocation loop to an offset scatter; the result is byte-identical
        to the inline path.
        """
        partition = self.partitions[pid]
        self.compaction_epoch += 1
        self.trace_epochs[pid] += 1
        if plan is None:
            survivor_set = set(survivors)
            unknown = survivor_set - partition.residents
            if unknown:
                raise StoreError(
                    f"survivors {sorted(unknown)} are not residents of partition {pid}"
                )
            reclaimed = [oid for oid in partition.residents if oid not in survivor_set]
        else:
            survivors = plan.survivors
            reclaimed = plan.reclaimed
        reclaimed_bytes = 0
        for oid in reclaimed:
            reclaimed_bytes += self._reclaim(oid, pid)

        fill_before = partition.fill
        partition.reset_for_compaction()
        placements = self.placements
        if plan is None:
            objects = self.objects
            for oid in survivors:
                size = objects[oid].size
                placements.put(oid, pid, partition.bump(oid, size), size)
        else:
            # Same residents insertion history as the bump loop (copy
            # order), then the precomputed offsets in one scatter. Dense
            # survivors' partition and size columns are already correct.
            residents_add = partition.residents.add
            for oid in survivors:
                residents_add(oid)
            partition.fill = plan.fill
            if _np is not None and len(plan.dense_oids):
                _np.frombuffer(placements.offs, dtype=_np.int64)[
                    plan.dense_oids
                ] = plan.dense_offs
            else:
                offs = placements.offs
                for oid, off in zip(plan.dense_oids, plan.dense_offs):
                    offs[oid] = off
            for oid, entry in plan.overflow:
                placements.overflow[oid] = entry
        # The allocated-bytes ledger shrinks by the whole recovered extent:
        # reclaimed objects plus any holes left by transaction rollbacks.
        self._allocated_bytes -= fill_before - partition.fill
        self._partition_free[pid] = partition.capacity - partition.fill
        if partition.fill < partition.capacity:
            self._reopen_partition(pid)
        return reclaimed_bytes

    def external_source_pages(self, pid: PartitionId) -> set[PageId]:
        """Pages of external objects holding pointers into partition ``pid``.

        These pages need a read-modify-write during collection because the
        objects they reference are relocated by compaction.

        The index aggregates distinct sources per partition, so each source
        object is visited once — not once per resident it references as the
        per-target ``incoming`` dicts would require.
        """
        pages: set[PageId] = set()
        page_size = self.config.page_size
        locate = self.placements.locate
        for src in self.remembered.sources_in(pid):
            loc = locate(src)
            if loc is None:
                continue
            src_pid, offset, size = loc
            first = offset // page_size
            last = (offset + size - 1) // page_size
            for index in range(first, last + 1):
                pages.add((src_pid, index))
        return pages

    # ------------------------------------------------------------------
    # Verification helpers (used by tests and oracle baselines)
    # ------------------------------------------------------------------

    def reachable_from_roots(self) -> set[ObjectId]:
        """Full-database reachability from the persistent roots."""
        return self.reachable_from(self.roots)

    def reachable_from(self, roots: Iterable[ObjectId]) -> set[ObjectId]:
        """Full-database reachability from an arbitrary root set.

        One whole-heap pass of the shared traversal helper
        (:func:`~repro.storage.traversal.breadth_first_order`) — the
        verification oracles and ``collect_global`` call this over the
        entire database.
        """
        return set(breadth_first_order(self.objects, roots))

    def check_death_annotations(self) -> set[ObjectId]:
        """Objects whose dead flag disagrees with true global reachability.

        Empty for a correct workload generator. Exposed so integration tests
        can assert annotation fidelity on real traces.
        """
        reachable = self.reachable_from_roots()
        mismatched: set[ObjectId] = set()
        for oid, obj in self.objects.items():
            if obj.dead == (oid in reachable):
                mismatched.add(oid)
        return mismatched

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, oid: ObjectId) -> StoredObject:
        obj = self.objects.get(oid)
        if obj is None:
            raise StoreError(f"unknown object {oid}")
        return obj

    def _placement(self, oid: ObjectId) -> Placement:
        placement = self.placements.get(oid)
        if placement is None:
            raise StoreError(f"object {oid} has no placement")
        return placement

    def _validate_target(self, target: ObjectId) -> None:
        if target not in self.objects:
            raise StoreError(f"pointer target {target} does not exist")

    def _place(self, oid: ObjectId, size: int) -> tuple[PartitionId, int]:
        """First-fit placement; grows the database when nothing fits (§3.1).

        Scans only the open-partition list (ascending pids, so placement
        decisions match a full scan exactly), bump-allocates, and keeps the
        per-partition free-byte ledger in step. Returns ``(pid, offset)``.
        """
        self._allocated_bytes += size
        free = self._partition_free
        for pid in self._open_partitions:
            if size <= free[pid]:
                partition = self.partitions[pid]
                break
        else:
            partition = self._grow_partition(size)
            pid = partition.pid
        offset = partition.bump(oid, size)
        left = free[pid] - size
        free[pid] = left
        if left <= 0:
            self._open_stale += 1
            if self._open_stale >= _OPEN_LIST_STALE_LIMIT:
                self._prune_open_partitions()
        return pid, offset

    def _grow_partition(self, size: int) -> Partition:
        """Append a fresh partition big enough for a ``size``-byte object."""
        capacity = max(self.config.partition_size, size)
        partition = Partition(pid=len(self.partitions), capacity=capacity)
        self.partitions.append(partition)
        self._physical_bytes += capacity
        self._partition_free.append(capacity)
        self.trace_epochs.append(0)
        self._open_partitions.append(partition.pid)
        self._open_set.add(partition.pid)
        return partition

    def _reopen_partition(self, pid: PartitionId) -> None:
        """Put ``pid`` back on the open list (space was recovered in it)."""
        if pid not in self._open_set:
            insort(self._open_partitions, pid)
            self._open_set.add(pid)

    def _prune_open_partitions(self) -> None:
        # Slice-assign: the batched replay interpreter aliases this list, so
        # the rebuild must preserve object identity.
        free = self._partition_free
        self._open_partitions[:] = [pid for pid in self._open_partitions if free[pid] > 0]
        self._open_set.clear()
        self._open_set.update(self._open_partitions)
        self._open_stale = 0

    def _touch_object_pages(self, oid: ObjectId, category: IOCategory, dirty: bool) -> None:
        # Inlined pages_of over the raw placement columns: one dict probe or
        # dataclass allocation per touch matters at trace scale.
        placements = self.placements
        parts = placements.parts
        if 0 <= oid < len(parts) and parts[oid] >= 0:
            pid = parts[oid]
            offset = placements.offs[oid]
            size = placements.sizes[oid]
        else:
            loc = placements.locate(oid)
            if loc is None:
                raise StoreError(f"object {oid} has no placement")
            pid, offset, size = loc
        page_size = self.config.page_size
        touch = self.buffer.touch
        first = offset // page_size
        last = (offset + size - 1) // page_size
        for index in range(first, last + 1):
            touch((pid, index), category, dirty=dirty)

    def _unpin(self, oid: ObjectId) -> None:
        """Drop ``oid``'s allocation pin (it became referenced or a root)."""
        pid = self.placements.part_of(oid)
        self.unlinked.discard(oid)
        self.remembered.unpin(pid, oid)
        if pid >= 0:
            self.trace_epochs[pid] += 1

    def _remember_edge(self, src: ObjectId, target: ObjectId) -> None:
        src_pid = self.partition_of(src)
        tgt_pid = self.placements.part_of(target)
        if tgt_pid < 0 or tgt_pid == src_pid:
            return
        self.partitions[tgt_pid].remember(src, target)
        self.remembered.remember_source(tgt_pid, src)
        self.trace_epochs[tgt_pid] += 1

    def _forget_edge(self, src: ObjectId, target: ObjectId) -> None:
        tgt_pid = self.placements.part_of(target)
        if tgt_pid < 0:
            return
        src_pid = self.placements.part_of(src)
        if src_pid >= 0 and src_pid == tgt_pid:
            return
        if self.partitions[tgt_pid].forget(src, target):
            self.remembered.forget_source(tgt_pid, src)
        self.trace_epochs[tgt_pid] += 1

    def _declare_dead(self, oid: ObjectId) -> None:
        obj = self.objects.get(oid)
        if obj is None or obj.dead:
            return
        obj.dead = True
        self.garbage.total_generated += obj.size
        pid = self.partition_of(oid)
        self.dead_bytes[pid] = self.dead_bytes.get(pid, 0) + obj.size

    def _reclaim(self, oid: ObjectId, pid: PartitionId) -> int:
        """Bookkeeping for one object reclaimed by the collector.

        Hot during compaction (one call per reclaimed object), so it uses
        the int-only placement accessors and inlines the outgoing-edge
        forget walk instead of paying a ``Placement`` allocation and a
        ``_forget_edge`` call per pointer. The source's own placement is
        already dropped here, exactly as when ``_forget_edge`` ran after
        ``placements.pop`` — intra-partition targets were never remembered,
        so skipping them is observationally identical.
        """
        obj = self.objects.pop(oid)
        placements = self.placements
        if placements.part_of(oid) != pid:
            self.objects[oid] = obj
            raise StoreError(f"object {oid} reclaimed from wrong partition")
        placements.discard(oid)

        size = obj.size
        if obj.dead:
            self.dead_bytes[pid] = self.dead_bytes.get(pid, 0) - size
        else:
            # The workload never declared this object dead, yet the collector
            # found it unreachable within its partition. Fold it into both
            # totals so ActGarb stays consistent, and count it for tests.
            self.garbage.total_generated += size
            self.garbage.undeclared += size
        self.garbage.total_collected += size

        # Sever remembered-set state in both directions.
        pointers = obj.pointers
        if pointers:
            part_of = placements.part_of
            partitions = self.partitions
            remembered = self.remembered
            for target in pointers.values():
                if target is None:
                    continue
                tgt_pid = part_of(target)
                if tgt_pid < 0 or tgt_pid == pid:
                    continue
                if partitions[tgt_pid].forget(oid, target):
                    remembered.forget_source(tgt_pid, oid)
        dropped = self.partitions[pid].drop_incoming(oid)
        if dropped:
            self.remembered.forget_sources(pid, dropped)
        self.roots.discard(oid)
        self.unlinked.discard(oid)
        self.remembered.drop_object(pid, oid)
        return size
