"""Logical object model for the simulated object database.

The simulator manipulates *stored objects*: fixed-size byte blobs with named
pointer slots. An object's identity is an :class:`ObjectId` that never changes,
even when the copying collector relocates the object within its partition.

Objects here carry no application payload — only the attributes the storage
layer and the garbage collector care about: a size in bytes, a kind tag (used
by workload generators and reports), and a mapping of pointer-slot names to
target object ids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Object identifiers are plain integers, allocated sequentially by the store.
ObjectId = int


class ObjectKind(enum.Enum):
    """Kind tag for stored objects.

    The storage layer treats all kinds identically; kinds exist so that
    workload generators, reports, and tests can reason about what a given
    object represents in the OO7 schema (or in synthetic workloads).
    """

    MODULE = "module"
    MANUAL = "manual"
    ASSEMBLY = "assembly"
    COMPOSITE_PART = "composite_part"
    DOCUMENT = "document"
    ATOMIC_PART = "atomic_part"
    CONNECTION = "connection"
    GENERIC = "generic"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectKind.{self.name}"


@dataclass(slots=True)
class StoredObject:
    """A single object resident in the database heap.

    Attributes:
        oid: Immutable identity of the object.
        size: Size of the object in bytes (includes its pointer slots).
        kind: Schema kind tag (informational).
        pointers: Mapping from slot name to target ``ObjectId``. A slot that
            holds ``None`` is an explicit null pointer; absent slots have never
            been written.
        dead: Set by the store when the workload declares the object globally
            unreachable. The collector never reads this flag — it is oracle
            state used for exact garbage accounting.
    """

    oid: ObjectId
    size: int
    kind: ObjectKind = ObjectKind.GENERIC
    pointers: dict[str, Optional[ObjectId]] = field(default_factory=dict)
    dead: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object size must be positive, got {self.size}")

    def targets(self) -> Iterator[ObjectId]:
        """Iterate over the non-null pointer targets of this object."""
        for target in self.pointers.values():
            if target is not None:
                yield target

    def slot_count(self) -> int:
        """Number of pointer slots that have ever been written."""
        return len(self.pointers)

    def points_to(self, oid: ObjectId) -> bool:
        """Return True if any slot of this object targets ``oid``.

        Null slots never match — a null pointer is not a reference, even when
        asked about ``None``.
        """
        if oid is None:
            return False
        return any(target == oid for target in self.pointers.values())
