"""LRU buffer pool with dirty-page write-back and I/O accounting.

The paper (§3.1) sets the I/O buffer to the size of one partition — 12 pages
of 8 kilobytes — arguing that a much smaller buffer would inflate collector
I/O while a much larger one would mask the locality benefits of compaction.

Pages are identified by ``(partition, page_index)`` pairs. The pool charges
one read I/O per miss and one write I/O per dirty eviction or explicit flush,
attributing each to whichever :class:`~repro.storage.iostats.IOCategory` the
caller is operating under.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.storage.iostats import IOCategory, IOStats
from repro.storage.partition import PartitionId

#: A page is addressed by (partition id, page index within the partition).
PageId = tuple[PartitionId, int]

#: Default page size used throughout the reproduction (8 KB, §3.1).
DEFAULT_PAGE_SIZE = 8 * 1024

#: Default buffer capacity in pages (12 pages = one 96 KB partition, §3.1).
DEFAULT_BUFFER_PAGES = 12


@dataclass
class BufferStats:
    """Cumulative buffer-pool statistics (hits and misses, all categories)."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of page accesses served from the buffer (0 if none)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def as_metrics(self) -> dict:
        """Flat metric name → value dict (for the observability registry)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class BufferPool:
    """A fixed-capacity LRU page buffer.

    Args:
        capacity: Maximum number of resident pages (must be positive).
        iostats: Counter sink for read/write I/O operations.

    The pool is deliberately simple — no pinning, no prefetch — mirroring the
    simulator described in [CWZ93]. Touching a page moves it to the MRU end;
    evictions come from the LRU end and cost a write I/O when dirty.
    """

    def __init__(self, capacity: int, iostats: IOStats) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._iostats = iostats
        # Maps page id -> dirty flag; ordering encodes recency (MRU last).
        self._pages: OrderedDict[PageId, bool] = OrderedDict()
        self.stats = BufferStats()
        #: Optional fault-injection hook, called as ``hook(page, category)``
        #: before every dirty write-back (the ``page.write`` site). It may
        #: raise an injected I/O error, or record the write as *torn* — the
        #: page image is then considered lost, which recovery from the
        #: logical redo log must tolerate.
        self.write_hook = None

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: PageId) -> bool:
        return page in self._pages

    def touch(self, page: PageId, category: IOCategory, dirty: bool = False) -> bool:
        """Access ``page``, faulting it in if absent.

        Args:
            page: The page to access.
            category: Which I/O ledger (application or collector) pays for any
                read or eviction write this access causes.
            dirty: Whether the access modifies the page.

        Returns:
            True on a buffer hit, False on a miss.
        """
        if page in self._pages:
            self.stats.hits += 1
            was_dirty = self._pages.pop(page)
            self._pages[page] = was_dirty or dirty
            return True

        self.stats.misses += 1
        self._evict_to(self._capacity - 1, category)
        self._iostats.record_read(category)
        self._pages[page] = dirty
        return False

    def is_dirty(self, page: PageId) -> bool:
        """Whether a resident page is dirty (False if not resident)."""
        return self._pages.get(page, False)

    def flush(self, category: IOCategory) -> int:
        """Write back every dirty page, leaving all pages resident and clean.

        Returns the number of pages written.
        """
        written = 0
        for page, dirty in self._pages.items():
            if dirty:
                self._write_back(page, category)
                self._pages[page] = False
                written += 1
        return written

    def invalidate_partition(self, pid: PartitionId, category: IOCategory) -> int:
        """Drop every buffered page of partition ``pid``.

        The collector calls this after compacting a partition: buffered page
        images are stale because objects moved. Dirty pages are written back
        first (charged to ``category``) so no updates are lost.

        Returns the number of pages dropped.
        """
        victims = [page for page in self._pages if page[0] == pid]
        for page in victims:
            if self._pages[page]:
                self._write_back(page, category)
            del self._pages[page]
        return len(victims)

    def resident_pages(self) -> Iterable[PageId]:
        """Snapshot of currently buffered page ids, LRU first."""
        return list(self._pages)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _evict_to(self, target_len: int, category: IOCategory) -> None:
        """Evict LRU pages until at most ``target_len`` pages remain."""
        while len(self._pages) > target_len:
            page, dirty = self._pages.popitem(last=False)
            if dirty:
                self._write_back(page, category)

    def _write_back(self, page: PageId, category: IOCategory) -> None:
        if self.write_hook is not None:
            self.write_hook(page, category)
        self._iostats.record_write(category)
