"""Partitions: the disjoint units of disk space the collector works on.

A partition is a fixed-size region of the database file, subdivided into
pages (see :mod:`repro.storage.buffer`). Objects are placed at byte offsets
within a partition; the page an object lives on is derived from its offset.

Partitions also carry the two pieces of per-partition state the paper's
policies need:

* the **pointer-overwrite counter** (the "fine grain state" of §2.4 and the
  input to the UPDATEDPOINTER partition-selection policy of [CWZ94]), and
* the **remembered set** of external objects holding pointers into the
  partition (the collector's conservative root set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.object_model import ObjectId

#: Partition identifiers are small sequential integers.
PartitionId = int


class PartitionFullError(Exception):
    """Raised when an allocation does not fit in the partition's free space."""


@dataclass
class Placement:
    """Where an object currently resides: partition, byte offset, byte size."""

    partition: PartitionId
    offset: int
    size: int

    def pages(self, page_size: int) -> range:
        """The partition-local page indexes this placement spans."""
        first = self.offset // page_size
        last = (self.offset + self.size - 1) // page_size
        return range(first, last + 1)


@dataclass(slots=True)
class Partition:
    """A fixed-capacity region of the database holding objects.

    Allocation within a partition is bump-pointer style: objects are placed at
    the current fill offset. Space freed by object death is *not* reusable
    until the collector compacts the partition (copying collection rewrites
    survivors contiguously from offset zero).

    Attributes:
        pid: Partition identifier.
        capacity: Total bytes in the partition.
        fill: Bump-allocation offset; bytes in ``[0, fill)`` are occupied by
            objects (live or garbage) since the last compaction.
        residents: Object ids currently placed in this partition.
        pointer_overwrites: Count of pointer overwrites whose *target* (old
            value) pointed into this partition since the last collection of
            this partition. This is the FGS counter of §2.4.
        incoming: Remembered set — for each resident object id, the external
            object ids with pointer slots targeting it, with a reference
            count per source (one source may reference the same target
            through several slots).
    """

    pid: PartitionId
    capacity: int
    fill: int = 0
    residents: set[ObjectId] = field(default_factory=set)
    pointer_overwrites: int = 0
    incoming: dict[ObjectId, dict[ObjectId, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"partition capacity must be positive, got {self.capacity}")

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes available for bump allocation."""
        return self.capacity - self.fill

    def fits(self, size: int) -> bool:
        """Whether a ``size``-byte object can be bump-allocated here."""
        return size <= self.free_bytes

    def bump(self, oid: ObjectId, size: int) -> int:
        """Unchecked bump allocation; returns the placement offset.

        The store's first-fit scan (and the batched replay interpreter) has
        already proven the object fits, so this skips the ``fits`` check and
        the :class:`Placement` construction — the flat placement table stores
        the three ints directly.
        """
        offset = self.fill
        self.fill = offset + size
        self.residents.add(oid)
        return offset

    def allocate(self, oid: ObjectId, size: int) -> Placement:
        """Place ``oid`` at the current fill offset.

        Raises:
            PartitionFullError: if the object does not fit.
        """
        if not self.fits(size):
            raise PartitionFullError(
                f"partition {self.pid}: cannot allocate {size} bytes "
                f"({self.free_bytes} free of {self.capacity})"
            )
        return Placement(partition=self.pid, offset=self.bump(oid, size), size=size)

    def reset_for_compaction(self) -> None:
        """Empty the partition prior to re-placing its survivors.

        The collector calls this, then re-allocates each survivor in copy
        order. The remembered set is preserved for surviving residents and
        pruned by the store as part of collection bookkeeping; the
        pointer-overwrite counter resets to zero (§2.4: "the FGS value of one
        single partition changes from x to 0").
        """
        self.fill = 0
        self.residents.clear()
        self.pointer_overwrites = 0

    # ------------------------------------------------------------------
    # Remembered set
    # ------------------------------------------------------------------

    def remember(self, source: ObjectId, target: ObjectId) -> None:
        """Record that external object ``source`` points at resident ``target``.

        Reference-counted: a source referencing the same target through
        several slots must be forgotten as many times before the entry drops.
        """
        sources = self.incoming.setdefault(target, {})
        sources[source] = sources.get(source, 0) + 1

    def forget(self, source: ObjectId, target: ObjectId) -> bool:
        """Drop one remembered reference; silently ignores absent entries.

        Absent entries are normal: the store only records *external*
        references, and intra-partition pointers are never remembered.
        Returns whether a reference was actually dropped, so the store can
        keep its incremental frontier index
        (:class:`~repro.gc.remembered.RememberedSetIndex`) in exact step.
        """
        sources = self.incoming.get(target)
        if sources is None:
            return False
        count = sources.get(source)
        if count is None:
            return False
        if count <= 1:
            del sources[source]
            if not sources:
                del self.incoming[target]
        else:
            sources[source] = count - 1
        return True

    def drop_incoming(self, target: ObjectId) -> Optional[dict[ObjectId, int]]:
        """Remove all remembered references to ``target`` (it was reclaimed).

        Returns the dropped source → count mapping (``None`` when there was
        none) so the caller can decrement its per-source aggregates.
        """
        return self.incoming.pop(target, None)

    def externally_referenced(self) -> set[ObjectId]:
        """Residents with at least one remembered external reference."""
        return {target for target, sources in self.incoming.items() if sources}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def page_count(self, page_size: int) -> int:
        """Number of pages the partition spans."""
        return (self.capacity + page_size - 1) // page_size

    def used_pages(self, page_size: int) -> int:
        """Number of pages containing at least one allocated byte."""
        if self.fill == 0:
            return 0
        return (self.fill + page_size - 1) // page_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition(pid={self.pid}, fill={self.fill}/{self.capacity}, "
            f"residents={len(self.residents)}, po={self.pointer_overwrites})"
        )
