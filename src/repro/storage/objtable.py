"""Flat structure-of-arrays object placement table.

The store's hottest per-event lookups — "which partition holds this oid,
at what offset, how many bytes" — used to go through a
``dict[ObjectId, Placement]``: one dict probe plus three attribute loads
on a heap-allocated dataclass per query, and one dataclass allocation per
create. :class:`PlacementTable` replaces that with three parallel
``array('q')`` columns indexed directly by oid:

* ``parts[oid]``  — partition id, or ``-1`` when the oid has no placement;
* ``offs[oid]``   — byte offset within the partition;
* ``sizes[oid]``  — object size in bytes.

Object ids from the workload generators are small and dense (allocated
sequentially from 1), so direct indexing wastes little space; oids that
are negative or beyond :data:`DENSE_CEILING` fall back to an overflow
dict so the table accepts any int key a trace can carry. Slots are
recycled implicitly: reclaiming an oid just writes ``-1`` back into
``parts``, and a later create of the same oid re-populates the row.

The table keeps the mapping surface the previous dict exposed (``get`` /
``[]`` / ``pop`` / ``in`` / ``len`` / iteration / ``items`` / ``==``), so
validation, tests and the transaction manager are unchanged — but
``__getitem__`` returns a fresh :class:`~repro.storage.partition.
Placement` *snapshot*, not live shared state. Hot paths (the heap's page
touch, the batched replay interpreter of :mod:`repro.sim.batch`) bypass
snapshots entirely and read the raw columns.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Mapping, Optional

from repro.storage.object_model import ObjectId
from repro.storage.partition import PartitionId, Placement

#: Dense rows above this oid would cost more memory than a dict entry is
#: worth; such oids (and negative ones) live in the overflow dict instead.
DENSE_CEILING = 1 << 22

#: ``parts`` value marking an empty row.
_ABSENT = -1

#: One int64 ``-1`` in little/big-endian alike (all bits set); used to
#: bulk-fill freshly grown column extents.
_FILL_ITEM = b"\xff" * 8

_MISSING = object()


class PlacementTable:
    """Mapping-compatible oid → (partition, offset, size) in parallel arrays."""

    __slots__ = ("parts", "offs", "sizes", "overflow", "_count")

    def __init__(self) -> None:
        #: Raw columns — exposed for hot loops. Readers must treat a
        #: ``parts`` value below zero as "no placement"; writers must go
        #: through :meth:`put` / :meth:`pop` (or replicate their count
        #: bookkeeping exactly, as the batched interpreter does).
        self.parts = array("q")
        self.offs = array("q")
        self.sizes = array("q")
        self.overflow: dict[ObjectId, tuple[int, int, int]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def dense_limit(self) -> int:
        """Oids below this index directly into the columns."""
        return len(self.parts)

    def reserve(self, n: int) -> None:
        """Grow the dense columns to cover oids ``< n`` (never shrinks).

        Batched replay calls this once with the trace's maximum create oid
        so the hot loop never pays growth checks; requests beyond
        :data:`DENSE_CEILING` are clamped (such oids overflow anyway).
        """
        n = min(n, DENSE_CEILING)
        grow = n - len(self.parts)
        if grow <= 0:
            return
        filler = _FILL_ITEM * grow
        self.parts.frombytes(filler)
        self.offs.frombytes(filler)
        self.sizes.frombytes(filler)

    def _grow_for(self, oid: ObjectId) -> None:
        current = len(self.parts)
        self.reserve(max(oid + 1, current * 2 if current else 1024))

    # ------------------------------------------------------------------
    # Primitive accessors (int-only, no Placement allocation)
    # ------------------------------------------------------------------

    def part_of(self, oid: ObjectId) -> PartitionId:
        """Partition holding ``oid``, or ``-1`` when it has no placement."""
        if 0 <= oid < len(self.parts):
            return self.parts[oid]
        entry = self.overflow.get(oid)
        return entry[0] if entry is not None else _ABSENT

    def locate(self, oid: ObjectId) -> Optional[tuple[int, int, int]]:
        """``(partition, offset, size)`` of ``oid``, or ``None``."""
        if 0 <= oid < len(self.parts):
            pid = self.parts[oid]
            if pid < 0:
                return None
            return pid, self.offs[oid], self.sizes[oid]
        return self.overflow.get(oid)

    def put(self, oid: ObjectId, pid: PartitionId, offset: int, size: int) -> None:
        """Insert or replace ``oid``'s placement."""
        if 0 <= oid < DENSE_CEILING:
            parts = self.parts
            if oid >= len(parts):
                self._grow_for(oid)
                parts = self.parts
            if parts[oid] < 0:
                self._count += 1
            parts[oid] = pid
            self.offs[oid] = offset
            self.sizes[oid] = size
        else:
            if oid not in self.overflow:
                self._count += 1
            self.overflow[oid] = (pid, offset, size)

    def discard(self, oid: ObjectId) -> bool:
        """Remove ``oid``'s placement if present; returns whether it was."""
        if 0 <= oid < len(self.parts):
            if self.parts[oid] < 0:
                return False
            self.parts[oid] = _ABSENT
            self._count -= 1
            return True
        if self.overflow.pop(oid, None) is not None:
            self._count -= 1
            return True
        return False

    # ------------------------------------------------------------------
    # Mapping surface (snapshot-returning)
    # ------------------------------------------------------------------

    def get(self, oid: ObjectId, default=None):
        loc = self.locate(oid)
        if loc is None:
            return default
        return Placement(partition=loc[0], offset=loc[1], size=loc[2])

    def __getitem__(self, oid: ObjectId) -> Placement:
        loc = self.locate(oid)
        if loc is None:
            raise KeyError(oid)
        return Placement(partition=loc[0], offset=loc[1], size=loc[2])

    def __setitem__(self, oid: ObjectId, placement: Placement) -> None:
        self.put(oid, placement.partition, placement.offset, placement.size)

    def pop(self, oid: ObjectId, default=_MISSING):
        loc = self.locate(oid)
        if loc is None:
            if default is _MISSING:
                raise KeyError(oid)
            return default
        self.discard(oid)
        return Placement(partition=loc[0], offset=loc[1], size=loc[2])

    def __delitem__(self, oid: ObjectId) -> None:
        if not self.discard(oid):
            raise KeyError(oid)

    def __contains__(self, oid) -> bool:
        return isinstance(oid, int) and self.locate(oid) is not None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[ObjectId]:
        parts = self.parts
        for oid in range(len(parts)):
            if parts[oid] >= 0:
                yield oid
        yield from self.overflow

    def keys(self) -> Iterator[ObjectId]:
        return iter(self)

    def items(self) -> Iterator[tuple[ObjectId, Placement]]:
        parts = self.parts
        offs = self.offs
        sizes = self.sizes
        for oid in range(len(parts)):
            pid = parts[oid]
            if pid >= 0:
                yield oid, Placement(partition=pid, offset=offs[oid], size=sizes[oid])
        for oid, entry in self.overflow.items():
            yield oid, Placement(partition=entry[0], offset=entry[1], size=entry[2])

    def values(self) -> Iterator[Placement]:
        for _oid, placement in self.items():
            yield placement

    # ------------------------------------------------------------------
    # Equality (tests compare whole tables, and tables against dicts)
    # ------------------------------------------------------------------

    def _as_tuples(self) -> dict[ObjectId, tuple[int, int, int]]:
        out: dict[ObjectId, tuple[int, int, int]] = {}
        parts = self.parts
        offs = self.offs
        sizes = self.sizes
        for oid in range(len(parts)):
            pid = parts[oid]
            if pid >= 0:
                out[oid] = (pid, offs[oid], sizes[oid])
        out.update(self.overflow)
        return out

    def __eq__(self, other) -> bool:
        if isinstance(other, PlacementTable):
            return self._as_tuples() == other._as_tuples()
        if isinstance(other, Mapping):
            if len(other) != self._count:
                return False
            for oid, placement in other.items():
                loc = self.locate(oid)
                if loc is None or loc != (
                    placement.partition, placement.offset, placement.size
                ):
                    return False
            return True
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlacementTable(count={self._count}, dense={len(self.parts)}, "
            f"overflow={len(self.overflow)})"
        )
