"""Store invariant checking.

A :class:`StoreValidator` audits an :class:`~repro.storage.heap.ObjectStore`
for internal consistency: placement bookkeeping, remembered-set coverage,
garbage-accounting identities, and pointer sanity. The simulation engine can
run it periodically (``SimulationConfig.validate_every``) as a debug mode;
tests use it directly.

Checks are grouped into named invariants so a violation report says exactly
what broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.heap import ObjectStore


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, detail: str) -> None:
        self.violations.append(f"[{invariant}] {detail}")

    def raise_if_failed(self) -> None:
        if not self.ok:
            summary = "\n".join(self.violations[:20])
            extra = len(self.violations) - 20
            if extra > 0:
                summary += f"\n... and {extra} more"
            raise StoreInvariantError(summary)


class StoreInvariantError(AssertionError):
    """Raised when a store fails validation in strict mode."""


class StoreValidator:
    """Audits every structural invariant of an object store."""

    def validate(self, store: ObjectStore) -> ValidationReport:
        report = ValidationReport()
        self._check_placements(store, report)
        self._check_partitions(store, report)
        self._check_pointers(store, report)
        self._check_remembered_sets(store, report)
        self._check_remembered_index(store, report)
        self._check_garbage_accounting(store, report)
        return report

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _check_placements(self, store: ObjectStore, report: ValidationReport) -> None:
        """Every object has one placement inside its partition's extent;
        placements within a partition never overlap."""
        if set(store.objects) != set(store.placements):
            missing = set(store.objects) ^ set(store.placements)
            report.add("placements", f"objects/placements mismatch: {sorted(missing)[:5]}")
            return
        for partition in store.partitions:
            spans = []
            for oid in partition.residents:
                placement = store.placements.get(oid)
                if placement is None or placement.partition != partition.pid:
                    report.add(
                        "placements",
                        f"resident {oid} of partition {partition.pid} misplaced",
                    )
                    continue
                spans.append((placement.offset, placement.size, oid))
            cursor = 0
            for offset, size, oid in sorted(spans):
                if offset < cursor:
                    report.add(
                        "placements",
                        f"object {oid} overlaps previous extent in partition {partition.pid}",
                    )
                cursor = max(cursor, offset + size)
            if cursor > partition.fill:
                report.add(
                    "placements",
                    f"partition {partition.pid}: extents exceed fill "
                    f"({cursor} > {partition.fill})",
                )

    def _check_partitions(self, store: ObjectStore, report: ValidationReport) -> None:
        """Residents are exactly the objects placed in each partition; fill
        matches the sum of resident sizes plus dead space is impossible
        (bump allocation keeps fill equal to the high-water extent)."""
        by_partition: dict[int, set[int]] = {}
        for oid, placement in store.placements.items():
            by_partition.setdefault(placement.partition, set()).add(oid)
        for partition in store.partitions:
            expected = by_partition.get(partition.pid, set())
            if partition.residents != expected:
                report.add(
                    "partitions",
                    f"partition {partition.pid}: residents {len(partition.residents)} "
                    f"!= placements {len(expected)}",
                )
            if partition.fill > partition.capacity:
                report.add(
                    "partitions",
                    f"partition {partition.pid}: fill {partition.fill} exceeds "
                    f"capacity {partition.capacity}",
                )
            if partition.pointer_overwrites < 0:
                report.add(
                    "partitions",
                    f"partition {partition.pid}: negative FGS counter",
                )

    def _check_pointers(self, store: ObjectStore, report: ValidationReport) -> None:
        """Live (non-dead) objects never hold dangling pointers."""
        for oid, obj in store.objects.items():
            if obj.dead:
                continue  # dead objects may dangle into reclaimed space
            for target in obj.targets():
                if target not in store.objects:
                    report.add(
                        "pointers",
                        f"live object {oid} dangles to reclaimed {target}",
                    )

    def _check_remembered_sets(self, store: ObjectStore, report: ValidationReport) -> None:
        """Remembered sets contain exactly the live cross-partition edges
        (with correct multiplicity)."""
        expected: dict[int, dict[tuple[int, int], int]] = {}
        for oid, obj in store.objects.items():
            src_pid = store.placements[oid].partition
            for target in obj.targets():
                placement = store.placements.get(target)
                if placement is None or placement.partition == src_pid:
                    continue
                bucket = expected.setdefault(placement.partition, {})
                bucket[(oid, target)] = bucket.get((oid, target), 0) + 1
        for partition in store.partitions:
            actual: dict[tuple[int, int], int] = {}
            for target, sources in partition.incoming.items():
                for src, count in sources.items():
                    actual[(src, target)] = count
            want = expected.get(partition.pid, {})
            if actual != want:
                extra = {k: v for k, v in actual.items() if want.get(k) != v}
                missing = {k: v for k, v in want.items() if actual.get(k) != v}
                report.add(
                    "remembered-sets",
                    f"partition {partition.pid}: extra={list(extra.items())[:3]} "
                    f"missing={list(missing.items())[:3]}",
                )

    def _check_remembered_index(self, store: ObjectStore, report: ValidationReport) -> None:
        """The incremental frontier index (``store.remembered``) agrees with
        a brute-force heap scan: per-partition root membership and allocation
        pins partition the global sets, and the per-source boundary counts
        aggregate the per-target remembered sets exactly."""
        idx = store.remembered
        for partition in store.partitions:
            pid = partition.pid
            want_roots = {
                oid for oid in store.roots
                if store.placements[oid].partition == pid
            }
            if set(idx.roots_in(pid)) != want_roots:
                report.add(
                    "remembered-index",
                    f"partition {pid}: root membership "
                    f"{sorted(idx.roots_in(pid))[:5]} != {sorted(want_roots)[:5]}",
                )
            want_pins = {
                oid for oid in store.unlinked
                if store.placements[oid].partition == pid
            }
            if set(idx.pins_in(pid)) != want_pins:
                report.add(
                    "remembered-index",
                    f"partition {pid}: allocation pins "
                    f"{sorted(idx.pins_in(pid))[:5]} != {sorted(want_pins)[:5]}",
                )
            want_sources: dict[int, int] = {}
            for sources in partition.incoming.values():
                for src, count in sources.items():
                    want_sources[src] = want_sources.get(src, 0) + count
            if dict(idx.sources_in(pid)) != want_sources:
                report.add(
                    "remembered-index",
                    f"partition {pid}: boundary sources disagree with "
                    f"per-target remembered sets",
                )
        total_edges = sum(
            count
            for partition in store.partitions
            for sources in partition.incoming.values()
            for count in sources.values()
        )
        if idx.edges != total_edges:
            report.add(
                "remembered-index",
                f"edge count {idx.edges} != remembered references {total_edges}",
            )
        if idx.remembers_total - idx.forgets_total != idx.edges:
            report.add(
                "remembered-index",
                f"churn counters inconsistent: {idx.remembers_total} remembers "
                f"- {idx.forgets_total} forgets != {idx.edges} live edges",
            )

    def _check_garbage_accounting(self, store: ObjectStore, report: ValidationReport) -> None:
        """ActGarb identity and per-partition dead-byte ledger."""
        dead_total = sum(obj.size for obj in store.objects.values() if obj.dead)
        if store.actual_garbage_bytes != dead_total:
            report.add(
                "garbage",
                f"ActGarb {store.actual_garbage_bytes} != resident dead bytes {dead_total}",
            )
        if store.garbage.actual != (
            store.garbage.total_generated - store.garbage.total_collected
        ):
            report.add("garbage", "TotGarb - TotColl identity violated")
        per_partition = {}
        for oid, obj in store.objects.items():
            if obj.dead:
                pid = store.placements[oid].partition
                per_partition[pid] = per_partition.get(pid, 0) + obj.size
        for pid, partition_bytes in per_partition.items():
            ledger = store.dead_bytes.get(pid, 0)
            if ledger != partition_bytes:
                report.add(
                    "garbage",
                    f"partition {pid}: dead-byte ledger {ledger} != actual {partition_bytes}",
                )
        for pid, ledger in store.dead_bytes.items():
            if ledger and per_partition.get(pid, 0) != ledger:
                report.add(
                    "garbage",
                    f"partition {pid}: stale dead-byte ledger {ledger}",
                )


def validate_store(store: ObjectStore, strict: bool = True) -> ValidationReport:
    """Convenience wrapper: validate and (by default) raise on violations."""
    report = StoreValidator().validate(store)
    if strict:
        report.raise_if_failed()
    return report
