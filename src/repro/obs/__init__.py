"""Observability layer: metrics registry, span tracing, run telemetry.

The substrate every future adaptive-policy and scaling PR reads from:

* :mod:`repro.obs.registry` — counters / gauges / histograms with a no-op
  fast path when disabled;
* :mod:`repro.obs.spans` — span-based wall-time tracing of run phases;
* :mod:`repro.obs.telemetry` — one JSON-lines telemetry file per run,
  including the per-collection GC timeline;
* :mod:`repro.obs.report` — the ``python -m repro metrics`` reader.

Attach points: ``Simulation(obs=...)``, the engine's ``telemetry=`` option
(``--telemetry DIR`` on the CLI), and ``python -m repro bench --telemetry``.
Telemetry never changes simulation results — see the determinism contract
in :mod:`repro.obs.telemetry`.
"""

from repro.obs.features import FeatureMatrix, collection_rows, load_training_rows
from repro.obs.registry import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    metrics_or_null,
)
from repro.obs.spans import NULL_TRACER, NullTracer, SpanRecord, Tracer
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    RunTelemetry,
    TelemetryError,
    iter_telemetry_files,
    load_telemetry,
    run_telemetry_path,
)

__all__ = [
    "Counter",
    "FeatureMatrix",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "RunTelemetry",
    "SpanRecord",
    "TELEMETRY_FORMAT",
    "TelemetryError",
    "Tracer",
    "collection_rows",
    "iter_telemetry_files",
    "load_telemetry",
    "load_training_rows",
    "metrics_or_null",
    "run_telemetry_path",
]
