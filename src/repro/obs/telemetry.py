"""Per-run telemetry: a JSON-lines file of spans, metrics and GC timeline.

One :class:`RunTelemetry` instance observes one unit of work — a simulation
run, an engine batch, a bench case, or a crash-recovery drill — and writes
a single ``.jsonl`` file describing it. Every line is one JSON object with
a ``type`` field:

``meta``
    Always the first line: telemetry format version, what was observed
    (``kind``/``label``/``seed``) and free-form attributes.
``collection``
    One line per garbage collection — the **GC timeline**: partition
    chosen, bytes reclaimed/copied, survivor count, estimator error vs the
    oracle, next trigger interval, phase, event index and the overwrite
    clock. A single telemetry file is sufficient to replot Figures 4–8
    style curves (see EXPERIMENTS.md).
``span``
    A finished :class:`~repro.obs.spans.SpanRecord` (phase wall times).
``event``
    Free-form occurrences: engine outcomes, injected crashes, recoveries.
``metrics``
    The final :class:`~repro.obs.registry.MetricsRegistry` snapshot.
``summary``
    The run's :class:`~repro.sim.metrics.SimulationSummary` as a dict
    (last line when present).

Records buffer in memory and the file is written atomically (temp file +
rename) on :meth:`close`, so crash drills that destroy and rebuild the
simulated process mid-run still produce exactly one coherent file.

Determinism contract: telemetry only *observes*. It reads counters the
simulation already maintains, draws no random numbers, charges no I/O, and
is excluded from result-cache fingerprints — with telemetry on or off,
summaries are pickle-equal and fingerprints identical (property-tested in
``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.gc.collector import CollectionResult
    from repro.sim.metrics import CollectionRecord

#: Telemetry file format version; bump on breaking schema changes.
TELEMETRY_FORMAT = 1


def _slug(text: str) -> str:
    """File-name-safe rendering of a free-form label."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "-" for c in text)
    return cleaned.strip("-") or "run"


def run_telemetry_path(
    root: Union[str, Path], index: int, label: str, seed: int
) -> Path:
    """The canonical per-run telemetry file name inside a telemetry dir."""
    return Path(root) / f"run_{index:03d}_{_slug(label)}_s{seed}.jsonl"


class RunTelemetry:
    """Collects one unit of work's telemetry and writes it as JSON lines.

    Args:
        path: Destination ``.jsonl`` file (parent directories are created).
        kind: What is being observed: ``"run"``, ``"engine"``, ``"bench"``
            or ``"drill"``.
        label: Display label (the spec label, bench case name, ...).
        seed: The run seed, when the unit of work has one.
        **meta: Extra JSON-compatible attributes for the ``meta`` line.
    """

    def __init__(
        self,
        path: Union[str, Path],
        kind: str = "run",
        label: str = "",
        seed: Optional[int] = None,
        **meta: object,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.label = label
        self.seed = seed
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sink=self._on_span)
        self.closed = False
        head: dict = {
            "type": "meta",
            "format": TELEMETRY_FORMAT,
            "kind": kind,
            "label": label,
        }
        if seed is not None:
            head["seed"] = seed
        if meta:
            head["attrs"] = meta
        self._records: List[dict] = [head]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, type_: str, **fields: object) -> None:
        """Append one free-form record line."""
        self._records.append({"type": type_, **fields})

    def event(self, name: str, **fields: object) -> None:
        """Append one ``event`` record (engine outcomes, crashes, ...)."""
        self._records.append({"type": "event", "name": name, **fields})

    def _on_span(self, span: SpanRecord) -> None:
        self._records.append({"type": "span", **span.as_dict()})

    def span(self, name: str, **attrs: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    # Simulation hooks (called by repro.sim.simulator when attached)
    # ------------------------------------------------------------------

    def on_collection(
        self,
        result: "CollectionResult",
        record: "CollectionRecord",
        wall_s: float,
    ) -> None:
        """Emit one GC-timeline line and update the collection metrics."""
        error = record.estimator_error
        self._records.append(
            {
                "type": "collection",
                "number": record.number,
                "phase": record.phase,
                "event_index": record.event_index,
                "overwrite_clock": record.overwrite_clock,
                "partition": record.partition,
                "reclaimed_bytes": record.reclaimed_bytes,
                "reclaimed_objects": result.reclaimed_objects,
                "live_bytes": record.live_bytes,
                "survivors": result.live_objects,
                "gc_reads": result.gc_reads,
                "gc_writes": result.gc_writes,
                "interval_next": record.interval_next,
                "actual_garbage_fraction": record.actual_garbage_fraction,
                "estimated_garbage_fraction": record.estimated_garbage_fraction,
                "target_garbage_fraction": record.target_garbage_fraction,
                "estimator_error": error,
                "db_size": record.db_size,
                "pending_overwrites": record.pending_overwrites,
                "partition_count": record.partition_count,
                "wall_s": round(wall_s, 6),
            }
        )
        metrics = self.metrics
        metrics.counter("gc.collections").inc()
        metrics.counter("gc.reclaimed_bytes").inc(record.reclaimed_bytes)
        metrics.counter("gc.copied_bytes").inc(record.live_bytes)
        metrics.counter("gc.survivors").inc(result.live_objects)
        metrics.counter("gc.io").inc(result.gc_io)
        metrics.histogram("gc.reclaimed_bytes_per_collection").observe(
            record.reclaimed_bytes
        )
        if error is not None:
            metrics.histogram("gc.estimator_abs_error").observe(abs(error))

    def on_run_end(self, sim: object, result: object) -> None:
        """Snapshot the run's stats objects into the registry + summary.

        ``sim`` is a :class:`~repro.sim.simulator.Simulation`; ``result``
        its :class:`~repro.sim.simulator.SimulationResult`. Typed as
        ``object`` to keep this module import-cycle-free.
        """
        import dataclasses

        metrics = self.metrics
        store = getattr(sim, "store", None)
        if store is not None:
            metrics.set_many(store.iostats.as_metrics(), prefix="io.")
            metrics.set_many(store.buffer.stats.as_metrics(), prefix="buffer.")
            metrics.gauge("sim.pointer_overwrites").set(store.pointer_overwrites)
            metrics.gauge("sim.db_size").set(store.db_size)
            metrics.gauge("sim.partitions").set(store.partition_count)
        tx = getattr(sim, "tx", None)
        wal = getattr(tx, "wal", None)
        if wal is not None:
            metrics.set_many(wal.stats.as_metrics(), prefix="wal.")
        redo_log = getattr(sim, "redo_log", None)
        if redo_log is not None:
            metrics.gauge("redo.records").set(len(redo_log.records))
        sampler = getattr(sim, "sampler", None)
        if sampler is not None:
            metrics.gauge("sim.events").set(sampler.event_index)
        summary = getattr(result, "summary", None)
        if summary is not None:
            self._records.append(
                {"type": "summary", **dataclasses.asdict(summary)}
            )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def close(self) -> Path:
        """Write the telemetry file atomically; idempotent."""
        if self.closed:
            return self.path
        self.closed = True
        snapshot = self.metrics.snapshot()
        # Keep `summary` the last line (spans finishing after on_run_end —
        # e.g. the enclosing "simulate" span — would otherwise trail it).
        tail = [r for r in self._records if r.get("type") == "summary"]
        if tail:
            self._records = [
                r for r in self._records if r.get("type") != "summary"
            ]
        if any(snapshot.values()):
            self._records.append({"type": "metrics", **snapshot})
        self._records.extend(tail)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        blob = "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self._records
        )
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(blob)
        os.replace(tmp, self.path)
        return self.path


# ----------------------------------------------------------------------
# Reading telemetry back
# ----------------------------------------------------------------------


class TelemetryError(Exception):
    """A telemetry file could not be parsed."""


def load_telemetry(path: Union[str, Path]) -> List[dict]:
    """Parse one telemetry file into its list of records.

    Raises:
        TelemetryError: on malformed JSON lines or a missing/alien header.
    """
    path = Path(path)
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"{path}:{lineno}: malformed JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TelemetryError(f"{path}:{lineno}: not a telemetry record")
        records.append(record)
    if not records or records[0].get("type") != "meta":
        raise TelemetryError(f"{path}: missing leading 'meta' record")
    if records[0].get("format") != TELEMETRY_FORMAT:
        raise TelemetryError(
            f"{path}: telemetry format {records[0].get('format')!r} "
            f"(this reader understands {TELEMETRY_FORMAT})"
        )
    return records


def iter_telemetry_files(root: Union[str, Path]) -> Iterator[Path]:
    """Yield every ``.jsonl`` file under a telemetry dir, sorted by name."""
    root = Path(root)
    if root.is_file():
        yield root
        return
    yield from sorted(root.glob("*.jsonl"))
