"""Span-based tracing of run phases.

A :class:`Tracer` times named phases (trace compile, sweep, per-run,
per-collection) as *spans*: each span records its name, its start offset
relative to the tracer's epoch, its wall-clock duration, and arbitrary
JSON-compatible attributes. Spans nest — the tracer tracks depth so a
pretty-printer can indent children — but are recorded flat, in completion
order, which is what a JSON-lines telemetry file wants.

Wall-clock times are the *only* non-deterministic values the observability
layer records, and they live exclusively here and in span records — never
in anything that feeds a simulation summary or a cache fingerprint.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    #: Seconds from the tracer's epoch to the span's start.
    start_s: float
    #: Wall-clock duration in seconds.
    wall_s: float
    #: Nesting depth at the time the span started (0 = top level).
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6),
            "depth": self.depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Times named phases; finished spans accumulate in :attr:`spans`.

    Args:
        sink: Optional callback invoked with each :class:`SpanRecord` as it
            finishes (the telemetry writer registers itself here so spans
            stream into the run's record list in completion order).
    """

    def __init__(self, sink: Optional[Callable[[SpanRecord], None]] = None) -> None:
        self._epoch = time.perf_counter()
        self._depth = 0
        self.spans: List[SpanRecord] = []
        self.sink = sink

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[SpanRecord]:
        """Context manager timing one phase; yields the live record."""
        start = time.perf_counter()
        record = SpanRecord(
            name=name,
            start_s=start - self._epoch,
            wall_s=0.0,
            depth=self._depth,
            attrs=dict(attrs),
        )
        self._depth += 1
        try:
            yield record
        finally:
            self._depth -= 1
            record.wall_s = time.perf_counter() - start
            self.spans.append(record)
            if self.sink is not None:
                self.sink(record)

    def record(self, name: str, wall_s: float, **attrs: object) -> SpanRecord:
        """Record an externally timed span (no context manager)."""
        record = SpanRecord(
            name=name,
            start_s=time.perf_counter() - self._epoch - wall_s,
            wall_s=wall_s,
            depth=self._depth,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        if self.sink is not None:
            self.sink(record)
        return record


class _NullSpan:
    """Reusable no-op context manager for the disabled tracer."""

    def __enter__(self) -> "SpanRecord":
        return _NULL_RECORD

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_RECORD = SpanRecord(name="null", start_s=0.0, wall_s=0.0)
_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: ``span`` costs one attribute lookup, no timing."""

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def record(self, name: str, wall_s: float, **attrs: object) -> SpanRecord:
        return _NULL_RECORD


#: The shared disabled tracer.
NULL_TRACER = NullTracer()
