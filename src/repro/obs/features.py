"""Telemetry → feature-matrix reader for the learned garbage estimator.

The GC timeline that :class:`~repro.obs.telemetry.RunTelemetry` records is
oracle-labelled training data: every ``collection`` line carries the
observables the live estimator sees (overwrite clock, bytes reclaimed,
survivor bytes, database size) *and* the oracle's
``actual_garbage_fraction``. This module replays those lines through the
same :class:`~repro.gc.learned.FeatureTracker` the deployed estimator
uses, producing :class:`~repro.gc.learned.TrainingRow` examples with zero
train/serve skew — property-tested in ``tests/obs/test_features.py``.

Wall-clock fields (``wall_s``, span records) are never read: the feature
matrix is a pure function of the deterministic simulation outputs, so the
trained model is byte-reproducible even across regenerated telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.gc.learned import DEFAULT_FEATURE_HISTORY, FeatureTracker, TrainingRow
from repro.obs.telemetry import TelemetryError, iter_telemetry_files, load_telemetry


@dataclass(frozen=True)
class FeatureMatrix:
    """Training rows plus the provenance of the files they came from."""

    rows: tuple[TrainingRow, ...]
    #: Files that contributed at least one collection record.
    files: tuple[str, ...]
    #: Parsed telemetry files with no GC timeline (engine/bench/event-only
    #: files) — valid inputs, just not training data.
    skipped: tuple[str, ...]


def _number(
    record: Mapping[str, object], key: str, default: Optional[float] = None
) -> float:
    """A collection record's numeric field, or a loud TelemetryError.

    ``default`` covers fields added to the telemetry schema after format
    1 shipped (pending overwrites, partition count): absent in older
    files, required in new ones.
    """
    value = record.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if value is None and default is not None:
        return default
    raise TelemetryError(f"collection record field {key!r} is not numeric: {value!r}")


def collection_rows(
    records: Sequence[Mapping[str, object]],
    source: str = "",
    history: float = DEFAULT_FEATURE_HISTORY,
) -> list[TrainingRow]:
    """Derive training rows from one telemetry file's records.

    Each file gets a fresh :class:`FeatureTracker`: the smoothed features
    are per-run state and must not leak across run boundaries. Collection
    records without an oracle label are skipped.
    """
    tracker = FeatureTracker(history=history)
    rows: list[TrainingRow] = []
    for record in records:
        if record.get("type") != "collection":
            continue
        if record.get("actual_garbage_fraction") is None:
            continue
        features = tracker.observe(
            overwrite_clock=_number(record, "overwrite_clock"),
            reclaimed_bytes=_number(record, "reclaimed_bytes"),
            live_bytes=_number(record, "live_bytes"),
            db_size=_number(record, "db_size"),
            pending_overwrites=_number(record, "pending_overwrites", 0.0),
            partition_count=_number(record, "partition_count", 0.0),
        )
        number = record.get("number")
        rows.append(
            TrainingRow(
                features=tuple(features),
                target=_number(record, "actual_garbage_fraction"),
                source=source,
                collection=number if isinstance(number, int) else len(rows) + 1,
            )
        )
    return rows


def load_training_rows(
    paths: Sequence[Union[str, Path]],
    history: float = DEFAULT_FEATURE_HISTORY,
) -> FeatureMatrix:
    """Build the feature matrix from telemetry files and/or directories.

    Directories expand to their sorted ``*.jsonl`` contents
    (:func:`~repro.obs.telemetry.iter_telemetry_files`), duplicates are
    dropped, and the resulting file order is deterministic — the training
    gate relies on repeat invocations seeing identical row sequences.

    Raises:
        TelemetryError: when a file is present but malformed — bad
            training inputs should fail loudly, not shrink the dataset.
    """
    ordered: list[Path] = []
    seen: set[str] = set()
    for path in paths:
        for candidate in iter_telemetry_files(path):
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                ordered.append(candidate)

    rows: list[TrainingRow] = []
    used: list[str] = []
    skipped: list[str] = []
    for candidate in ordered:
        records = load_telemetry(candidate)
        file_rows = collection_rows(records, source=candidate.name, history=history)
        if not file_rows:
            skipped.append(str(candidate))
            continue
        used.append(str(candidate))
        rows.extend(file_rows)
    return FeatureMatrix(rows=tuple(rows), files=tuple(used), skipped=tuple(skipped))


__all__ = [
    "FeatureMatrix",
    "collection_rows",
    "load_training_rows",
]
