"""Pretty-printing and aggregation of telemetry files: ``repro metrics``.

``python -m repro metrics <dir-or-file>`` reads every telemetry ``.jsonl``
file produced by a ``--telemetry`` run, prints one block per file (meta,
span wall times, GC-timeline digest, headline metrics) and an aggregate
footer across all files. ``--json`` emits the aggregate as machine-readable
JSON instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs.telemetry import (
    TelemetryError,
    iter_telemetry_files,
    load_telemetry,
)


@dataclass
class FileDigest:
    """Everything the report needs from one telemetry file."""

    path: Path
    kind: str
    label: str
    seed: Optional[int]
    spans: List[dict] = field(default_factory=list)
    collections: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None
    summary: Optional[dict] = None

    @property
    def reclaimed_bytes(self) -> int:
        return sum(int(c.get("reclaimed_bytes", 0)) for c in self.collections)

    @property
    def gc_io(self) -> int:
        return sum(
            int(c.get("gc_reads", 0)) + int(c.get("gc_writes", 0))
            for c in self.collections
        )

    @property
    def mean_abs_estimator_error(self) -> Optional[float]:
        errors = [
            abs(float(c["estimator_error"]))
            for c in self.collections
            if c.get("estimator_error") is not None
        ]
        if not errors:
            return None
        return sum(errors) / len(errors)


def digest_file(path: Path) -> FileDigest:
    """Load and bucket one telemetry file's records."""
    records = load_telemetry(path)
    meta = records[0]
    digest = FileDigest(
        path=path,
        kind=str(meta.get("kind", "run")),
        label=str(meta.get("label", "")),
        seed=meta.get("seed"),
    )
    for record in records[1:]:
        kind = record.get("type")
        if kind == "span":
            digest.spans.append(record)
        elif kind == "collection":
            digest.collections.append(record)
        elif kind == "event":
            digest.events.append(record)
        elif kind == "metrics":
            digest.metrics = record
        elif kind == "summary":
            digest.summary = record
    return digest


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------


def _format_spans(digest: FileDigest, limit: int = 8) -> str:
    spans = sorted(digest.spans, key=lambda s: -float(s.get("wall_s", 0.0)))
    parts = [
        f"{span.get('name')} {float(span.get('wall_s', 0.0)):.3f}s"
        for span in spans[:limit]
    ]
    if len(spans) > limit:
        parts.append(f"... {len(spans) - limit} more")
    return ", ".join(parts) if parts else "(none)"


def format_file_digest(digest: FileDigest) -> str:
    """One human-readable block per telemetry file."""
    head = f"{digest.path.name}  [{digest.kind}"
    if digest.label:
        head += f" {digest.label!r}"
    if digest.seed is not None:
        head += f" seed={digest.seed}"
    head += "]"
    lines = [head]
    lines.append(f"  spans: {_format_spans(digest)}")
    if digest.collections:
        first = digest.collections[0]
        last = digest.collections[-1]
        line = (
            f"  gc timeline: {len(digest.collections)} collections, "
            f"{digest.reclaimed_bytes:,} bytes reclaimed, "
            f"{digest.gc_io:,} GC I/Os "
            f"(events {first.get('event_index')}..{last.get('event_index')})"
        )
        error = digest.mean_abs_estimator_error
        if error is not None:
            line += f", mean |estimator error| {error:.4f}"
        lines.append(line)
    if digest.summary is not None:
        summary = digest.summary
        lines.append(
            "  summary: gc_io_fraction "
            f"{float(summary.get('gc_io_fraction', 0.0)):.4f}, "
            "garbage_fraction_mean "
            f"{float(summary.get('garbage_fraction_mean', 0.0)):.4f}, "
            f"{int(summary.get('events', 0)):,} events"
        )
    if digest.events:
        names: dict[str, int] = {}
        for event in digest.events:
            name = str(event.get("name", "event"))
            names[name] = names.get(name, 0) + 1
        rendered = ", ".join(f"{name}×{count}" for name, count in sorted(names.items()))
        lines.append(f"  events: {rendered}")
    if digest.metrics is not None:
        counters = digest.metrics.get("counters", {})
        if counters:
            shown = list(counters.items())[:6]
            rendered = ", ".join(f"{name}={value:g}" for name, value in shown)
            if len(counters) > len(shown):
                rendered += f", ... {len(counters) - len(shown)} more"
            lines.append(f"  counters: {rendered}")
    return "\n".join(lines)


def aggregate(digests: Sequence[FileDigest]) -> dict:
    """Aggregate telemetry digests into one JSON-compatible document."""
    runs = [d for d in digests if d.kind == "run"]
    collections = sum(len(d.collections) for d in digests)
    doc = {
        "files": len(digests),
        "runs": len(runs),
        "collections": collections,
        "reclaimed_bytes": sum(d.reclaimed_bytes for d in digests),
        "gc_io": sum(d.gc_io for d in digests),
        "kinds": sorted({d.kind for d in digests}),
    }
    gc_fractions = [
        float(d.summary["gc_io_fraction"])
        for d in runs
        if d.summary is not None and "gc_io_fraction" in d.summary
    ]
    if gc_fractions:
        doc["gc_io_fraction_mean"] = sum(gc_fractions) / len(gc_fractions)
    errors = [
        e
        for e in (d.mean_abs_estimator_error for d in digests)
        if e is not None
    ]
    if errors:
        doc["mean_abs_estimator_error"] = sum(errors) / len(errors)
    return doc


def format_report(digests: Sequence[FileDigest]) -> str:
    """The full ``repro metrics`` report over a telemetry directory."""
    if not digests:
        return "no telemetry files found"
    blocks = [format_file_digest(d) for d in digests]
    agg = aggregate(digests)
    footer = (
        f"{agg['files']} telemetry file(s), {agg['runs']} run(s), "
        f"{agg['collections']} collections, "
        f"{agg['reclaimed_bytes']:,} bytes reclaimed"
    )
    if "gc_io_fraction_mean" in agg:
        footer += f", mean gc_io_fraction {agg['gc_io_fraction_mean']:.4f}"
    return "\n\n".join(blocks + [footer])


# ----------------------------------------------------------------------
# CLI entry point: python -m repro metrics
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments metrics",
        description=(
            "Pretty-print and aggregate telemetry files written by "
            "--telemetry runs."
        ),
    )
    parser.add_argument(
        "path",
        type=Path,
        help="telemetry directory (or a single .jsonl file)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate document as JSON instead of text",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.path.exists():
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    digests = []
    for path in iter_telemetry_files(args.path):
        try:
            digests.append(digest_file(path))
        except TelemetryError as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
    if not digests:
        print(f"error: no readable telemetry files under {args.path}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(aggregate(digests), indent=2, sort_keys=True))
    else:
        print(format_report(digests))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
