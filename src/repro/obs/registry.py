"""Lightweight metrics registry: counters, gauges, histograms.

The observability layer's first rule is *do no harm*: attaching metrics to
a simulation must never change its results, and leaving metrics detached
must cost (almost) nothing. Two fast paths exist:

* **detached** — instrumented code holds ``None`` and guards with a single
  ``if metrics is not None`` test (the pattern the simulator hot loop
  uses; identical to the existing ``fault_hook`` guard);
* **null object** — code that prefers unconditional calls can hold
  :data:`NULL_METRICS`, a registry whose instruments are shared no-op
  singletons (``inc``/``set``/``observe`` are empty methods), so the call
  compiles to one cheap no-op method dispatch.

All instruments are process-local, deterministic accumulators — no clocks,
no randomness — so a metrics snapshot is a pure function of the
instrumented code path.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union


def _plain(value: float) -> Union[int, float]:
    """Render integral floats as ints (nicer JSON: ``4`` not ``4.0``)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down; records the last value set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    Keeps count/sum/min/max exactly plus a coarse shape: each observation
    lands in the bucket ``2**k`` that is the smallest power of two >= the
    value (negative and zero observations share the ``0`` bucket). That is
    enough to replot coarse distributions from a telemetry file without
    retaining every sample.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = self._bucket(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @staticmethod
    def _bucket(value: float) -> str:
        if value <= 0:
            return "0"
        bound = 1
        while bound < value:
            bound *= 2
        return str(bound)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": _plain(self.total),
            "min": _plain(self.minimum) if self.count else 0,
            "max": _plain(self.maximum) if self.count else 0,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items(), key=lambda kv: int(kv[0]))),
        }


class _NullCounter(Counter):
    """Shared no-op counter: ``inc`` does nothing."""

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002 - no-op by design
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Names → instruments, created lazily on first use.

    Instruments are keyed by dotted name (``"gc.collections"``,
    ``"cache.result.hits"``); asking for the same name twice returns the
    same instrument. :meth:`snapshot` renders everything into a plain
    JSON-compatible dict with deterministic (sorted) ordering.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # Bulk recording
    # ------------------------------------------------------------------

    def set_many(self, values: dict, prefix: str = "") -> None:
        """Set one gauge per ``(name, value)`` pair, optionally prefixed.

        The bridge from existing stats objects (``IOStats``, ``BufferStats``,
        ``WalStats``, ``TraceCacheStats``) into the registry: each exposes an
        ``as_metrics()`` flat dict that lands here.
        """
        for name, value in values.items():
            self.gauge(prefix + name if prefix else name).set(float(value))

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value
        for name in sorted(self._gauges):
            yield name, self._gauges[name].value

    def snapshot(self) -> dict:
        """JSON-compatible rendering of every instrument, sorted by name."""
        return {
            "counters": {
                name: _plain(self._counters[name].value)
                for name in sorted(self._counters)
            },
            "gauges": {
                name: _plain(self._gauges[name].value)
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op singleton."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def set_many(self, values: dict, prefix: str = "") -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled registry (see module docstring).
NULL_METRICS = NullMetricsRegistry()


def metrics_or_null(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalise an optional registry to a safe-to-call instance."""
    return registry if registry is not None else NULL_METRICS
