"""repro — reproduction of Cook, Klauser, Zorn & Wolf (SIGMOD 1996).

*Semi-automatic, Self-adaptive Control of Garbage Collection Rates in Object
Databases.*

The package provides:

* an object-database storage simulator (partitioned heap, LRU buffer pool,
  partitioned copying garbage collector, OO7 benchmark workloads), and
* the paper's contribution: the **SAIO** and **SAGA** self-adaptive
  collection-rate policies with their garbage-estimation heuristics.

Quickstart::

    from repro import Oo7Application, SaioPolicy, Simulation, TINY

    app = Oo7Application(TINY, seed=1)
    sim = Simulation(policy=SaioPolicy(io_fraction=0.10))
    result = sim.run(app.events())
    print(result.summary.gc_io_fraction)  # ≈ 0.10
"""

from repro.core import (
    AllocationRatePolicy,
    CgsCbEstimator,
    CgsHbEstimator,
    CoupledSaioSagaPolicy,
    DecayingOracleBlend,
    FgsCbEstimator,
    FgsHbEstimator,
    FixedRatePolicy,
    GarbageEstimator,
    OpportunisticPolicy,
    OracleEstimator,
    PartitionHeuristicPolicy,
    RatePolicy,
    SagaPolicy,
    SaioPolicy,
    TimeBase,
    Trigger,
    make_estimator,
)
from repro.faults import (
    DrillReport,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    load_fault_plan,
    run_crash_recovery_drill,
)
from repro.gc import (
    CollectionResult,
    CopyingCollector,
    MostGarbageOracleSelection,
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
    make_selection_policy,
)
from repro.oo7 import SMALL, SMALL_PRIME, TINY, OO7Config, Oo7Graph, build_database
from repro.sim import (
    AggregateResult,
    AggregateStat,
    ExperimentSpec,
    ParallelRunner,
    PolicySpec,
    ResultCache,
    RunFailure,
    RunStats,
    RunTimeoutError,
    SelectionSpec,
    Simulation,
    SimulationConfig,
    SimulationResult,
    SimulationSummary,
    WorkloadSpec,
    run_experiment,
    run_experiment_batch,
    run_one,
    run_seeds,
)
from repro.storage import IOCategory, IOStats, ObjectKind, ObjectStore, StoreConfig
from repro.tx import Transaction, TransactionError, TransactionManager
# Note: ``repro.WorkloadSpec`` is the declarative registry-key spec from
# ``repro.sim.spec`` (imported above); the *protocol* of the same name lives
# at ``repro.workload.WorkloadSpec``.
from repro.workload import (
    CompiledTrace,
    GrammarWorkload,
    Oo7Application,
    PresetWorkload,
    SyntheticPhase,
    SyntheticWorkload,
    TenantMix,
    TenantMixConfig,
    TenantSpec,
    TraceCache,
    TransactionalSpec,
    TransactionalWorkload,
    WorkloadConfig,
    compile_trace,
    make_preset,
    make_profile,
    tenant_mix,
    trace_stats,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateResult",
    "AllocationRatePolicy",
    "AggregateStat",
    "CgsCbEstimator",
    "CgsHbEstimator",
    "CollectionResult",
    "CompiledTrace",
    "CopyingCollector",
    "CoupledSaioSagaPolicy",
    "DecayingOracleBlend",
    "DrillReport",
    "ExperimentSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FgsCbEstimator",
    "FgsHbEstimator",
    "FixedRatePolicy",
    "GarbageEstimator",
    "GrammarWorkload",
    "IOCategory",
    "IOStats",
    "MostGarbageOracleSelection",
    "ObjectKind",
    "ObjectStore",
    "OO7Config",
    "Oo7Application",
    "Oo7Graph",
    "OpportunisticPolicy",
    "OracleEstimator",
    "ParallelRunner",
    "PartitionHeuristicPolicy",
    "PartitionSelectionPolicy",
    "PolicySpec",
    "PresetWorkload",
    "RandomSelection",
    "RatePolicy",
    "ResultCache",
    "RoundRobinSelection",
    "RunFailure",
    "RunStats",
    "RunTimeoutError",
    "SMALL",
    "SMALL_PRIME",
    "SagaPolicy",
    "SaioPolicy",
    "SelectionSpec",
    "SimulatedCrash",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSummary",
    "StoreConfig",
    "SyntheticPhase",
    "SyntheticWorkload",
    "TINY",
    "TenantMix",
    "TenantMixConfig",
    "TenantSpec",
    "TimeBase",
    "TraceCache",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionalSpec",
    "TransactionalWorkload",
    "Trigger",
    "UpdatedPointerSelection",
    "WorkloadConfig",
    "WorkloadSpec",
    "build_database",
    "compile_trace",
    "load_fault_plan",
    "make_estimator",
    "make_preset",
    "make_profile",
    "make_selection_policy",
    "run_crash_recovery_drill",
    "run_experiment",
    "run_experiment_batch",
    "run_one",
    "run_seeds",
    "tenant_mix",
    "trace_stats",
]
