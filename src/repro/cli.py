"""Command-line experiment runner: ``python -m repro`` / ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments figure4
    repro-experiments figure5 --seeds 0 1 2 3 --out results/figure5.txt
    repro-experiments figure8 --jobs 4 --progress
    repro-experiments all --out-dir results/
    repro-experiments figure4 --no-cache
    REPRO_FULL=1 repro-experiments figure8

Each experiment prints the same tables/plots the benchmark harness writes
into ``results/``. The set of experiments comes from
:mod:`repro.experiments.registry` — ``list`` enumerates it.

Simulation runs fan out over ``--jobs`` worker processes (default: one per
CPU) and are memoised in a content-addressed on-disk cache (default
``.repro-cache/``, override with ``--cache-dir`` or ``REPRO_CACHE_DIR``,
disable with ``--no-cache``); a repeated invocation answers every run from
the cache without simulating. ``--progress`` reports each completed run on
stderr.

Workload traces are likewise compiled and cached (default
``<cache-dir>/traces``, override with ``--trace-cache-dir`` or
``REPRO_TRACE_CACHE_DIR``, disable with ``--no-trace-cache``), so each
unique (workload, seed) trace is built once per sweep instead of once per
policy cell. ``--profile`` wraps the experiment in cProfile and prints the
hottest functions; ``python -m repro bench`` runs the standard performance
suite (see :mod:`repro.bench`).

Failure tolerance: ``--retries N`` re-attempts a failing run with
exponential backoff, ``--run-timeout S`` bounds each run's wall clock, and
``--faults plan.json`` injects a deterministic
:class:`~repro.faults.plan.FaultPlan` into every run. Runs that still fail
are quarantined into the per-setting statistics (the batch always
completes with partial results).

``python -m repro fleet`` sweeps grammar-driven multi-tenant scenario
grids — (grammar × tenants × seeds × policies) — through the same engine
and caches (see :mod:`repro.fleet`).

``python -m repro serve`` runs the simulator as a long-lived service over
an unbounded workload stream — periodic WAL checkpoints with redo-log
truncation, backpressure under a heap bound, graceful SIGTERM drain — and
``serve --soak`` runs crash-soak drills against it (see
:mod:`repro.service.cli`).

``python -m repro train`` fits the learned garbage estimator
(:mod:`repro.gc.learned`) from recorded telemetry GC timelines, and
``python -m repro tournament`` ranks fixed/SAIO/SAGA/learned policies
across a scenario grid, reporting per-estimator error alongside
end-to-end I/O (see :mod:`repro.experiments.tournament`).

Observability: ``--telemetry DIR`` writes one JSON-lines telemetry file
per simulated run (per-collection GC timeline, metrics snapshot, phase
spans) plus one engine-level file per batch; ``python -m repro metrics
DIR`` pretty-prints and aggregates them. Telemetry only observes — results
and cache fingerprints are identical with it on or off.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.registry import (
    Experiment,
    RunOptions,
    get_experiment,
    iter_experiments,
)
from repro.faults.plan import load_fault_plan
from repro.sim.cache import ResultCache
from repro.sim.engine import SeedOutcome
from repro.workload.trace_cache import TraceCache

#: Name → experiment, registry-driven (kept as a module attribute because
#: programmatic callers and the tests introspect it).
EXPERIMENTS: dict[str, Experiment] = {
    exp.name: exp for exp in iter_experiments()
}

DEFAULT_CACHE_DIR = ".repro-cache"


class _ProgressReporter:
    """Tallies cache hits/misses/failures; optionally narrates to stderr."""

    def __init__(self, verbose: bool = False, stream=None):
        self.verbose = verbose
        self.stream = stream if stream is not None else sys.stderr
        self.hits = 0
        self.misses = 0
        self.failures = 0

    def __call__(self, outcome: SeedOutcome) -> None:
        if outcome.failed:
            self.failures += 1
        elif outcome.cached:
            self.hits += 1
        else:
            self.misses += 1
        if self.verbose:
            label = outcome.label or "run"
            if outcome.failed:
                source = f"FAILED: {outcome.error}"
            elif outcome.cached:
                source = "cache"
            else:
                source = f"{outcome.wall_time:.2f}s"
            print(
                f"  [{outcome.completed}/{outcome.total}] {label} "
                f"seed={outcome.seed} ({source})",
                file=self.stream,
            )

    def summary(self) -> str:
        total = self.hits + self.misses + self.failures
        if not total:
            return ""
        parts = f"; {total} runs: {self.hits} cached, {self.misses} simulated"
        if self.failures:
            parts += f", {self.failures} FAILED"
        return parts


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(raw: str) -> int:
    value = int(raw)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of Cook, Klauser, Zorn & Wolf "
            "(SIGMOD 1996). Set REPRO_FULL=1 for paper-scale grids."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run, 'all' for every one, or 'list' to enumerate",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="explicit seed list (default: 3 seeds, or 10 with REPRO_FULL=1)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for simulation fan-out "
            "(default: one per CPU; 1 = run in-process)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "directory for the on-disk result cache "
            f"(default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR!r})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (every run simulates)",
    )
    parser.add_argument(
        "--trace-cache-dir",
        type=Path,
        default=None,
        help=(
            "directory for compiled workload traces (default: "
            "$REPRO_TRACE_CACHE_DIR or <cache-dir>/traces)"
        ),
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable trace compilation/caching (rebuild the trace per run)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="STATS_FILE",
        help=(
            "profile the experiment with cProfile; print the hottest "
            "functions to stderr and optionally dump pstats to STATS_FILE"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed simulation run (stderr)",
    )
    parser.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        help="extra attempts per failing run, with exponential backoff",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; a run exceeding it counts as failed",
    )
    parser.add_argument(
        "--faults",
        type=Path,
        default=None,
        metavar="PLAN.JSON",
        help="inject the deterministic FaultPlan in this JSON file into every run",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "write JSON-lines telemetry (per-run GC timelines, metrics, "
            "spans) into this directory; inspect with 'python -m repro "
            "metrics DIR'. Telemetry never changes results."
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="with 'all': write one report file per experiment here",
    )
    return parser


def _resolve_cache(args) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    root = args.cache_dir
    if root is None:
        root = Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
    return ResultCache(root)


def _resolve_trace_cache(args) -> Optional[TraceCache]:
    """Resolve the compiled-trace cache from flags and environment.

    ``--no-trace-cache`` restores the legacy behaviour exactly: the trace
    is rebuilt from the generator for every run and nothing is written.
    """
    if args.no_trace_cache:
        return None
    root = args.trace_cache_dir
    if root is None:
        env = os.environ.get("REPRO_TRACE_CACHE_DIR")
        if env:
            root = Path(env)
        else:
            cache_root = args.cache_dir
            if cache_root is None:
                cache_root = Path(
                    os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
                )
            root = Path(cache_root) / "traces"
    return TraceCache(root)


def _run_named(
    name: str, seeds: Optional[list[int]], options: RunOptions
) -> str:
    exp = get_experiment(name)
    reporter = options.progress
    started = time.time()
    report = exp.run(seeds, options)
    elapsed = time.time() - started
    stats = (
        reporter.summary() if isinstance(reporter, _ProgressReporter) else ""
    )
    return f"{report}\n\n[{name} completed in {elapsed:.1f}s{stats}]\n"


def _profiled(callable_, stats_file: str):
    """Run ``callable_`` under cProfile; report the hottest functions."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(callable_)
    finally:
        profiler.create_stats()
        if stats_file:
            profiler.dump_stats(stats_file)
            print(f"[profile stats written to {stats_file}]", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "bench":
        from repro.bench import main as bench_main

        return bench_main(raw[1:])
    if raw and raw[0] == "metrics":
        from repro.obs.report import main as metrics_main

        return metrics_main(raw[1:])
    if raw and raw[0] == "fleet":
        from repro.fleet import main as fleet_main

        return fleet_main(raw[1:])
    if raw and raw[0] == "serve":
        from repro.service.cli import main as serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "train":
        from repro.train import main as train_main

        return train_main(raw[1:])
    if raw and raw[0] == "tournament":
        from repro.experiments.tournament import main as tournament_main

        return tournament_main(raw[1:])

    args = _build_parser().parse_args(raw)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for exp in iter_experiments():
            print(f"{exp.name.ljust(width)}  {exp.description}")
        return 0

    cache = _resolve_cache(args)
    trace_cache = _resolve_trace_cache(args)
    faults = load_fault_plan(args.faults) if args.faults is not None else None
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        options = RunOptions(
            jobs=args.jobs,
            cache=cache,
            progress=_ProgressReporter(verbose=args.progress),
            retries=args.retries,
            run_timeout=args.run_timeout,
            faults=faults,
            trace_cache=trace_cache,
            telemetry=args.telemetry,
        )
        if args.profile is not None:
            report = _profiled(
                lambda: _run_named(name, args.seeds, options), args.profile
            )
        else:
            report = _run_named(name, args.seeds, options)
        print(report)
        target = None
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            target = args.out_dir / f"{name}.txt"
        elif args.out is not None:
            target = args.out
        if target is not None:
            target.write_text(report)
            print(f"[written to {target}]", file=sys.stderr)
    if args.telemetry is not None:
        print(
            f"[telemetry in {args.telemetry}; inspect with "
            f"'python -m repro metrics {args.telemetry}']",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
