"""Command-line experiment runner: ``python -m repro`` / ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments figure4
    repro-experiments figure5 --seeds 0 1 2 3 --out results/figure5.txt
    repro-experiments all --out-dir results/
    REPRO_FULL=1 repro-experiments figure8

Each experiment prints the same tables/plots the benchmark harness writes
into ``results/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments import (
    format_figure1,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_table1,
    run_figure1,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_clock_ablation,
    run_fixed_heuristic_ablation,
    run_saio_history_ablation,
    run_selection_ablation,
    run_table1,
    run_weight_ablation,
)
from repro.experiments import (
    format_clustering_experiment,
    format_estimator_space,
    run_clustering_experiment,
    run_estimator_space,
)
from repro.experiments.ablations import (
    format_clock_ablation,
    format_fixed_heuristic,
    format_saio_history,
    format_selection_ablation,
    format_weight_ablation,
)


def _figure1(seeds):
    return format_figure1(run_figure1(seeds=seeds))


def _table1(seeds):
    return format_table1(run_table1())


def _figure4(seeds):
    return format_figure4(run_figure4(seeds=seeds))


def _figure5(seeds):
    return format_figure5(run_figure5(seeds=seeds))


def _figure6(seeds):
    seed = seeds[0] if seeds else 0
    return format_figure6(run_figure6(seed=seed))


def _figure7(seeds):
    seed = seeds[0] if seeds else 0
    return format_figure7(run_figure7(seed=seed))


def _figure8(seeds):
    return format_figure8(run_figure8(seeds=seeds))


def _ablation_clustering(seeds):
    return format_clustering_experiment(run_clustering_experiment(seeds=seeds))


def _ablation_estimators(seeds):
    return format_estimator_space(run_estimator_space(seeds=seeds))


def _describe(seeds):
    from repro.oo7 import SMALL_PRIME, describe_phases, describe_structure

    return "\n\n".join([describe_phases(), describe_structure(SMALL_PRIME)])


def _ablation_clock(seeds):
    return format_clock_ablation(run_clock_ablation(seeds=seeds))


def _ablation_fixed(seeds):
    return format_fixed_heuristic(run_fixed_heuristic_ablation(seeds=seeds))


def _ablation_history(seeds):
    return format_saio_history(run_saio_history_ablation(seeds=seeds))


def _ablation_selection(seeds):
    return format_selection_ablation(run_selection_ablation(seeds=seeds))


def _ablation_weight(seeds):
    return format_weight_ablation(run_weight_ablation(seeds=seeds))


EXPERIMENTS: dict[str, tuple[Callable[[Optional[list[int]]], str], str]] = {
    "table1": (_table1, "OO7 database parameters and generated-database verification"),
    "figure1": (_figure1, "fixed collection rate vs I/O and garbage collected"),
    "figure4": (_figure4, "SAIO accuracy sweep"),
    "figure5": (_figure5, "SAGA accuracy sweep per estimator"),
    "figure6": (_figure6, "time-varying garbage estimation (CGS/CB, FGS/HB)"),
    "figure7": (_figure7, "FGS/HB history parameter study + rate/yield traces"),
    "figure8": (_figure8, "connectivity sensitivity (6 and 9)"),
    "describe": (_describe, "Figures 2 and 3: phases and database structure"),
    "ablation-clock": (_ablation_clock, "§2 overwrite clock vs allocation clock"),
    "ablation-clustering": (_ablation_clustering, "§3.4 reclustering behaviour of the reorganisations"),
    "ablation-estimators": (_ablation_estimators, "§2.4 full 2x2 estimator design space"),
    "ablation-fixed": (_ablation_fixed, "§2.1 partition-heuristic fixed rate failure"),
    "ablation-history": (_ablation_history, "§4.1.1 SAIO history parameter"),
    "ablation-selection": (_ablation_selection, "§4.1.2 CGS/CB vs selection policy"),
    "ablation-weight": (_ablation_weight, "§2.3 SAGA slope Weight"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of Cook, Klauser, Zorn & Wolf "
            "(SIGMOD 1996). Set REPRO_FULL=1 for paper-scale grids."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run, 'all' for every one, or 'list' to enumerate",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="explicit seed list (default: 3 seeds, or 10 with REPRO_FULL=1)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="with 'all': write one report file per experiment here",
    )
    return parser


def _run_named(name: str, seeds: Optional[list[int]]) -> str:
    runner, _description = EXPERIMENTS[name]
    started = time.time()
    report = runner(seeds)
    elapsed = time.time() - started
    return f"{report}\n\n[{name} completed in {elapsed:.1f}s]\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name][1]}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        report = _run_named(name, args.seeds)
        print(report)
        target = None
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            target = args.out_dir / f"{name}.txt"
        elif args.out is not None:
            target = args.out
        if target is not None:
            target.write_text(report)
            print(f"[written to {target}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
