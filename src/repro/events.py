"""Trace events — the language database applications speak to the simulator.

Traces are streams of these events (§3.2: "traces of database application
events — object creations, accesses, modifications — are used to drive the
simulations"). Workload generators produce them; the simulator replays them
against the object store.

``PointerWriteEvent`` carries a ``dies`` annotation: the objects that become
globally unreachable as a consequence of the write. Generators compute this
constructively (they perform every disconnection deliberately and know the
local structure). The annotation feeds only the store's oracle garbage
accounting — the collector never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

from repro.storage.object_model import ObjectId, ObjectKind


@dataclass(frozen=True)
class CreateEvent:
    """Allocate a new object.

    ``oid`` is chosen by the generator so that later events can refer to the
    object; generators draw ids from their own monotone counter.
    """

    oid: ObjectId
    size: int
    kind: ObjectKind = ObjectKind.GENERIC
    pointers: tuple[tuple[str, Optional[ObjectId]], ...] = ()


@dataclass(frozen=True)
class AccessEvent:
    """Read an object (clean page touch)."""

    oid: ObjectId


@dataclass(frozen=True)
class UpdateEvent:
    """Modify an object's non-pointer data (dirty page touch)."""

    oid: ObjectId


@dataclass(frozen=True)
class PointerWriteEvent:
    """Write one pointer slot of an existing object.

    Overwriting a non-null slot advances the overwrite clock; writing into an
    empty or null slot is a plain pointer store. ``dies`` lists the objects
    this write disconnects from the database roots.
    """

    src: ObjectId
    slot: str
    target: Optional[ObjectId]
    dies: tuple[ObjectId, ...] = ()


@dataclass(frozen=True)
class RootEvent:
    """Register an object in the database's persistent root set."""

    oid: ObjectId


@dataclass(frozen=True)
class PhaseMarkerEvent:
    """Boundary between application phases (GenDB, Reorg1, ...)."""

    name: str


@dataclass(frozen=True)
class IdleEvent:
    """One tick of database quiescence (used by opportunism studies)."""

    ticks: int = 1


@dataclass(frozen=True)
class BeginTransactionEvent:
    """Open a transaction: subsequent operations are undoable as a unit.

    While a transaction is active the simulator defers garbage collection —
    the paper's model locks the whole database during collection (§3.2), so
    a collection can only run between transactions.
    """

    txid: int


@dataclass(frozen=True)
class CommitTransactionEvent:
    """Commit the active transaction (its effects become permanent)."""

    txid: int


@dataclass(frozen=True)
class AbortTransactionEvent:
    """Abort the active transaction: every effect is physically undone."""

    txid: int


TraceEvent = Union[
    CreateEvent,
    AccessEvent,
    UpdateEvent,
    PointerWriteEvent,
    RootEvent,
    PhaseMarkerEvent,
    IdleEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    AbortTransactionEvent,
]


@dataclass
class TraceStats:
    """Summary statistics of a trace, for reports and sanity tests."""

    events: int = 0
    creates: int = 0
    accesses: int = 0
    updates: int = 0
    pointer_writes: int = 0
    pointer_overwrites: int = 0
    deaths: int = 0
    bytes_created: int = 0
    bytes_died: int = 0
    phases: list[str] = field(default_factory=list)

    @property
    def garbage_per_overwrite(self) -> float:
        """Bytes of garbage per pointer overwrite — the paper's headline
        workload constant (§2.1 reports ~1 KB per 6 overwrites for OO7)."""
        if self.pointer_overwrites == 0:
            return 0.0
        return self.bytes_died / self.pointer_overwrites


def trace_stats(trace: Iterable[TraceEvent], sizes: Optional[dict[ObjectId, int]] = None) -> TraceStats:
    """Single-pass summary of a trace.

    Object sizes for death accounting are taken from the trace's own creates;
    ``sizes`` can pre-seed sizes for objects created outside the trace.
    """
    stats = TraceStats()
    known_sizes: dict[ObjectId, int] = dict(sizes or {})
    pointer_state: dict[tuple[ObjectId, str], Optional[ObjectId]] = {}
    for event in trace:
        stats.events += 1
        if isinstance(event, CreateEvent):
            stats.creates += 1
            stats.bytes_created += event.size
            known_sizes[event.oid] = event.size
            for slot, target in event.pointers:
                pointer_state[(event.oid, slot)] = target
        elif isinstance(event, AccessEvent):
            stats.accesses += 1
        elif isinstance(event, UpdateEvent):
            stats.updates += 1
        elif isinstance(event, PointerWriteEvent):
            stats.pointer_writes += 1
            key = (event.src, event.slot)
            if pointer_state.get(key) is not None:
                stats.pointer_overwrites += 1
            pointer_state[key] = event.target
            stats.deaths += len(event.dies)
            stats.bytes_died += sum(known_sizes.get(oid, 0) for oid in event.dies)
        elif isinstance(event, PhaseMarkerEvent):
            stats.phases.append(event.name)
    return stats


def iterate_trace(*parts: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Chain several event streams into one trace."""
    for part in parts:
        yield from part
