"""``python -m repro serve`` — run the simulator as a long-lived service.

Two postures:

* **serve** (default): consume an unbounded (or ``--max-events``-bounded)
  workload stream at an optional target rate, checkpointing the redo log
  periodically and applying backpressure under the configured heap bound.
  SIGTERM/SIGINT drain the in-flight transaction, flush a final
  checkpoint, and print the service report.
* **soak** (``--soak --faults PLAN.json``): run the crash-soak drill —
  an uncrashed reference plus a fault-injected service that is killed,
  recovered from checkpoint + log suffix, and resumed at the exact stream
  index, ending with a byte-identity verdict. Exit status 0 only when the
  final state matches the reference and every post-checkpoint recovery
  replayed only the suffix.

Examples::

    python -m repro serve --workload oltp-churn --policy saga:0.3 \\
        --max-events 200000 --checkpoint-every 20000
    python -m repro serve --tenants oltp-churn,read-browse --soak \\
        --faults plan.json --max-events 100000 --telemetry soak.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.fleet import parse_policy
from repro.service.config import BACKPRESSURE_MODES, ServiceConfig
from repro.service.server import GcService
from repro.service.soak import run_soak_drill
from repro.service.stream import grammar_stream, tenant_stream
from repro.sim.spec import build_policy
from repro.workload.tenants import TENANT_PROFILES, make_profile, tenant_mix


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the GC simulator as a long-lived service over an "
        "unbounded workload stream, with WAL checkpoints, bounded memory "
        "and crash-soak drills.",
    )
    workload = parser.add_argument_group("workload stream")
    workload.add_argument(
        "--workload",
        default="oltp-churn",
        metavar="PROFILE",
        help="single-tenant grammar profile: %(choices)s (default "
        "%(default)s)" % {
            "choices": ", ".join(sorted(TENANT_PROFILES)),
            "default": "oltp-churn",
        },
    )
    workload.add_argument(
        "--tenants",
        metavar="P1,P2,...",
        help="comma-separated tenant profiles merged into one multi-tenant "
        "stream (overrides --workload)",
    )
    workload.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default %(default)s)",
    )
    workload.add_argument(
        "--seed", type=int, default=0,
        help="stream + policy seed (default %(default)s)",
    )
    workload.add_argument(
        "--max-live-clusters", type=int, default=512, metavar="N",
        help="streaming generator's live-cluster bound (default %(default)s)",
    )
    service = parser.add_argument_group("service knobs")
    service.add_argument(
        "--policy", default="saga:0.3", metavar="KIND:ARG",
        help="collection-rate policy, e.g. fixed:200, allocation:24576, "
        "saio:0.1, saga:0.3 (default %(default)s)",
    )
    service.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="stop after N stream events (default: run until SIGTERM)",
    )
    service.add_argument(
        "--target-ops", type=float, default=None, metavar="RATE",
        help="pace the stream to RATE events/second wall-clock "
        "(default: unthrottled)",
    )
    service.add_argument(
        "--checkpoint-every", type=int, default=50_000, metavar="N",
        help="checkpoint cadence in applied events (default %(default)s)",
    )
    service.add_argument(
        "--max-log-records", type=int, default=None, metavar="N",
        help="checkpoint early when the redo-log suffix exceeds N records",
    )
    service.add_argument(
        "--max-heap-bytes", type=int, default=None, metavar="BYTES",
        help="hard bound on the modelled heap; requires --backpressure",
    )
    service.add_argument(
        "--backpressure", choices=BACKPRESSURE_MODES, default="off",
        help="overload response when --max-heap-bytes would be exceeded "
        "(default %(default)s)",
    )
    drill = parser.add_argument_group("soak drills")
    drill.add_argument(
        "--soak", action="store_true",
        help="run the crash-soak drill instead of plain serving "
        "(requires --faults and --max-events)",
    )
    drill.add_argument(
        "--faults", metavar="PLAN.json",
        help="fault plan file (FaultPlan JSON) injected into the drilled "
        "service",
    )
    drill.add_argument(
        "--max-crashes", type=int, default=64, metavar="N",
        help="abort the soak after N crashes (default %(default)s)",
    )
    out = parser.add_argument_group("output")
    out.add_argument(
        "--telemetry", metavar="FILE.jsonl",
        help="write JSON-lines telemetry (checkpoints, crashes, "
        "service.* metrics); inspect with 'python -m repro metrics'",
    )
    out.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    return parser


def _make_stream(args):
    if args.tenants:
        profiles = [p.strip() for p in args.tenants.split(",") if p.strip()]
        config = tenant_mix(profiles, scale=args.scale)
        return tenant_stream(
            config, seed=args.seed, max_live_clusters=args.max_live_clusters
        )
    config = make_profile(args.workload, scale=args.scale)
    return grammar_stream(
        config, seed=args.seed, max_live_clusters=args.max_live_clusters
    )


def _service_config(args) -> ServiceConfig:
    return ServiceConfig(
        target_ops_per_s=args.target_ops,
        checkpoint_every_events=args.checkpoint_every,
        max_log_records=args.max_log_records,
        max_heap_bytes=args.max_heap_bytes,
        backpressure=args.backpressure,
        max_events=args.max_events,
    )


def _print_serve_report(report, as_json: bool) -> None:
    if as_json:
        payload = {
            "stopped": report.stopped,
            "events_seen": report.events_seen,
            "events_applied": report.events_applied,
            "next_index": report.next_index,
            "checkpoints": report.checkpoints,
            "collections": report.collections,
            "heap_peak_bytes": report.heap_peak_bytes,
            "log_suffix_length": report.log_suffix_length,
            "log_appended_total": report.log_appended_total,
            "wal": report.wal,
            "backpressure": report.backpressure.as_metrics(),
            "final_digest": report.final_digest,
            "paced_sleep_s": round(report.paced_sleep_s, 3),
            "wall_s": round(report.wall_s, 3),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    bp = report.backpressure
    print(f"stopped: {report.stopped} after {report.events_seen} events "
          f"({report.events_applied} applied) in {report.wall_s:.2f}s")
    print(f"checkpoints: {report.checkpoints}  collections: "
          f"{report.collections}  heap peak: {report.heap_peak_bytes} bytes")
    print(f"redo log: {report.log_suffix_length} suffix records "
          f"({report.log_appended_total} lifetime)  wal: {report.wal}")
    if bp.engaged:
        print(f"backpressure: engaged {bp.engaged}x, "
              f"{bp.forced_collections} forced collections, "
              f"{bp.shed_events} events shed "
              f"({bp.shed_objects} objects, {bp.shed_transactions} txs)")
    print(f"state digest: {report.final_digest}")
    print(f"resume index: {report.next_index}")


def _print_soak_report(report, as_json: bool) -> None:
    if as_json:
        payload = {
            "events_total": report.events_total,
            "crashes": report.crashes,
            "checkpoints": report.checkpoints,
            "matches_reference": report.matches_reference,
            "suffix_only": report.suffix_only,
            "reference_digest": report.reference_digest,
            "final_digest": report.final_digest,
            "recoveries": [
                {
                    "site": r.site,
                    "event_index": r.event_index,
                    "resume_index": r.resume_index,
                    "recovered_objects": r.recovered_objects,
                    "from_checkpoint": r.from_checkpoint,
                    "records_replayed": r.records_replayed,
                    "log_appended_total": r.log_appended_total,
                }
                for r in report.recoveries
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"soak: {report.events_total} events, {report.crashes} crashes, "
          f"{report.checkpoints} checkpoints")
    for r in report.recoveries:
        origin = (
            f"checkpoint@{r.checkpoint_event_index}"
            if r.from_checkpoint
            else "full log"
        )
        print(f"  crash at {r.site} (event {r.event_index}) -> recovered "
              f"{r.recovered_objects} objects from {origin}, replayed "
              f"{r.records_replayed}/{r.log_appended_total} records, "
              f"resumed at {r.resume_index}")
    verdict = "MATCH" if report.matches_reference else "MISMATCH"
    print(f"byte-identity: {verdict} "
          f"(reference {report.reference_digest[:16]}..., "
          f"final {report.final_digest[:16]}...)")
    print(f"suffix-only recovery: {'yes' if report.suffix_only else 'NO'}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    stream = _make_stream(args)
    svc = _service_config(args)
    policy_spec = parse_policy(args.policy)

    if args.soak:
        if not args.faults:
            print("error: --soak requires --faults PLAN.json", file=sys.stderr)
            return 2
        if args.max_events is None:
            print("error: --soak requires --max-events (a bounded window)",
                  file=sys.stderr)
            return 2
        plan = FaultPlan.from_json(Path(args.faults).read_text())
        report = run_soak_drill(
            stream,
            policy_spec,
            seed=args.seed,
            service=svc,
            plan=plan,
            max_crashes=args.max_crashes,
            telemetry=args.telemetry,
        )
        _print_soak_report(report, args.json)
        return 0 if (report.matches_reference and report.suffix_only) else 1

    obs = None
    if args.telemetry:
        from repro.obs.telemetry import RunTelemetry

        obs = RunTelemetry(
            args.telemetry, kind="service", label=args.policy, seed=args.seed
        )
    gcs = GcService(
        policy=build_policy(policy_spec, args.seed),
        stream=stream,
        service=svc,
        obs=obs,
    )
    gcs.install_signal_handlers()
    report = gcs.run()
    if obs is not None:
        obs.close()
    _print_serve_report(report, args.json)
    return 0
