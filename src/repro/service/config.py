"""Service-mode configuration: pacing, durability cadence, and bounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Valid backpressure modes (see :mod:`repro.service.backpressure`).
BACKPRESSURE_MODES = ("off", "shed", "delay")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of a long-running :class:`~repro.service.server.GcService`.

    Attributes:
        target_ops_per_s: Wall-clock admission rate. The loop sleeps just
            enough to hold the stream at this rate; ``None`` (default)
            consumes events as fast as the hardware allows. Pacing is pure
            wall-clock behaviour — it never changes results.
        checkpoint_every_events: Quiescent-point checkpoint cadence, in
            applied events. Each checkpoint snapshots the committed state
            (:func:`repro.tx.recovery.build_checkpoint`), pays its modelled
            WAL I/O, and truncates the redo log — recovery afterwards
            replays only the suffix logged since.
        max_log_records: Redo-log backlog bound. When the post-checkpoint
            suffix exceeds this, a checkpoint is taken early at the next
            quiescent point, regardless of the event cadence. ``None``
            disables the bound.
        max_heap_bytes: Hard bound on the modelled heap (``store.db_size``).
            Admission control keeps occupancy at or under this bound by
            forcing collections and, if garbage collection cannot free
            enough, shedding or delaying incoming work — see
            ``backpressure``. ``None`` disables admission control.
        backpressure: What to do when ``max_heap_bytes`` would be exceeded
            and forced collections cannot reclaim enough: ``"shed"`` drops
            the incoming work (and everything referencing it, so the
            stream stays coherent), ``"delay"`` counts a delay per forced
            collection round and sheds only as a last resort, ``"off"``
            disables admission entirely (the deterministic-drill posture:
            shed decisions depend on GC timing, which crash/recovery
            legitimately shifts, so byte-identity soaks run with
            backpressure off).
        max_events: Stop after this many stream events (``None`` runs until
            shutdown is requested). Bounded soaks and the CLI set it.
    """

    target_ops_per_s: Optional[float] = None
    checkpoint_every_events: int = 50_000
    max_log_records: Optional[int] = None
    max_heap_bytes: Optional[int] = None
    backpressure: str = "off"
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target_ops_per_s is not None and self.target_ops_per_s <= 0:
            raise ValueError(
                f"target_ops_per_s must be > 0, got {self.target_ops_per_s}"
            )
        if self.checkpoint_every_events < 1:
            raise ValueError(
                "checkpoint_every_events must be >= 1, got "
                f"{self.checkpoint_every_events}"
            )
        if self.max_log_records is not None and self.max_log_records < 1:
            raise ValueError(
                f"max_log_records must be >= 1, got {self.max_log_records}"
            )
        if self.max_heap_bytes is not None and self.max_heap_bytes < 1:
            raise ValueError(
                f"max_heap_bytes must be >= 1, got {self.max_heap_bytes}"
            )
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.backpressure!r}"
            )
        if self.max_events is not None and self.max_events < 0:
            raise ValueError(
                f"max_events must be >= 0, got {self.max_events}"
            )
