"""The long-running GC service: an unbounded-stream simulation process.

:class:`GcService` wraps one :class:`~repro.sim.simulator.Simulation` in a
service loop that adds what a long-lived process needs on top of trace
replay:

* **durability cadence** — periodic quiescent-point checkpoints
  (:func:`repro.tx.recovery.build_checkpoint`) written through the WAL
  and installed into the redo log, which truncates it: recovery after a
  crash replays only the suffix logged since the last checkpoint;
* **bounded memory** — admission control
  (:mod:`repro.service.backpressure`) that forces collections and sheds
  or delays incoming work before the modelled heap can exceed its bound;
* **graceful shutdown** — SIGTERM/SIGINT (or
  :meth:`GcService.request_shutdown`) drains the in-flight transaction,
  takes a final checkpoint, and returns a report;
* **pacing** — optional wall-clock throttling to a target ops/sec;
* **observability** — checkpoint/shed/heartbeat events and
  ``service.*`` metrics through :mod:`repro.obs`.

Crash semantics are identical to finite drills: an injected
:class:`~repro.faults.injector.SimulatedCrash` propagates annotated with
``event_index``/``resume_index``, and a recovered service resumes the
stream at exactly that index (:mod:`repro.service.soak` drives the
cycle).
"""

from __future__ import annotations

import dataclasses
import signal
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.rate_policy import RatePolicy
from repro.events import (
    AbortTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    TraceEvent,
)
from repro.faults.injector import SimulatedCrash
from repro.gc.selection import PartitionSelectionPolicy
from repro.service.backpressure import AdmissionController, BackpressureStats
from repro.service.config import ServiceConfig
from repro.service.stream import EventStream
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import ObjectStore
from repro.tx.recovery import RedoLog, build_checkpoint

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.telemetry import RunTelemetry


@dataclass
class ServiceReport:
    """Everything one service run (start → stop/crash boundary) produced."""

    #: Stream events consumed (applied + shed; phase markers included).
    events_seen: int = 0
    #: Events actually applied to the store.
    events_applied: int = 0
    #: Absolute stream index the next run should resume from.
    next_index: int = 0
    #: Checkpoints installed (including the final one).
    checkpoints: int = 0
    #: Collections performed over the run (forced ones included).
    collections: int = 0
    #: Why the loop stopped: end-of-stream / max-events / shutdown.
    stopped: str = ""
    #: SHA-256 of the committed reachable state at stop.
    final_digest: str = ""
    #: Peak modelled heap occupancy observed (bytes).
    heap_peak_bytes: int = 0
    #: Redo-log lifetime counters at stop.
    log_appended_total: int = 0
    log_truncated_total: int = 0
    #: Records currently after the last checkpoint.
    log_suffix_length: int = 0
    #: WAL statistics snapshot (``WalStats.as_metrics`` shape).
    wal: dict = field(default_factory=dict)
    #: Admission-control outcomes (zeroes when backpressure is off).
    backpressure: BackpressureStats = field(default_factory=BackpressureStats)
    #: Wall-clock seconds spent sleeping for pacing.
    paced_sleep_s: float = 0.0
    #: Wall-clock seconds the run took.
    wall_s: float = 0.0


class GcService:
    """A long-lived simulation process over an unbounded event stream.

    Args:
        policy: Collection-rate policy (fresh instance; rebuilt by the
            soak harness after each crash, like finite drills do).
        stream: The event source; must be replayable from any index.
        selection: Partition-selection policy (default as Simulation's).
        sim_config: Base simulation config; redo logging and the WAL are
            force-enabled (a service without durability could not
            recover).
        service: The :class:`ServiceConfig` knobs.
        faults: Fault plan or live injector (soak drills share one
            injector across crash cycles).
        obs: Optional telemetry (``kind="service"``).
        store / redo_log: Recovered state to resume onto, exactly like
            :class:`~repro.sim.simulator.Simulation`.
    """

    def __init__(
        self,
        policy: RatePolicy,
        stream: EventStream,
        selection: Optional[PartitionSelectionPolicy] = None,
        sim_config: Optional[SimulationConfig] = None,
        service: Optional[ServiceConfig] = None,
        faults=None,
        obs: Optional["RunTelemetry"] = None,
        store: Optional[ObjectStore] = None,
        redo_log: Optional[RedoLog] = None,
    ) -> None:
        self.service = service or ServiceConfig()
        base = sim_config or SimulationConfig()
        config = dataclasses.replace(
            base, enable_redo_log=True, enable_wal=True
        )
        self.sim = Simulation(
            policy=policy,
            selection=selection,
            config=config,
            faults=faults,
            store=store,
            redo_log=redo_log,
            obs=obs,
        )
        self.stream = stream
        self.obs = obs
        self.admission: Optional[AdmissionController] = None
        if (
            self.service.max_heap_bytes is not None
            and self.service.backpressure != "off"
        ):
            self.admission = AdmissionController(
                self.service.max_heap_bytes,
                self.service.backpressure,
                self._forced_collect,
            )
        self._shutdown_requested = False
        self._shed_oids: set = set()
        self._shed_txid: Optional[int] = None
        self._events_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the loop to drain and stop (signal-handler safe)."""
        self._shutdown_requested = True

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handler(signum, frame):
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------

    def run(self, start_index: int = 0) -> ServiceReport:
        """Consume the stream from ``start_index`` until a stop condition.

        Stop conditions: the stream ends, ``service.max_events`` stream
        events were consumed, or shutdown was requested — the latter two
        drain the in-flight transaction first, so the stop point is always
        quiescent and the final checkpoint covers everything applied.
        An injected crash propagates as
        :class:`~repro.faults.injector.SimulatedCrash` annotated with the
        resume index, like :meth:`Simulation.run`.
        """
        sim = self.sim
        svc = self.service
        store = sim.store
        iostats = store.iostats
        tx = sim.tx
        run_started = time.monotonic()
        report = ServiceReport(next_index=start_index)
        events = self.stream.events_from(start_index)
        sim._event_index = start_index - 1
        sim._tx_start_index = None
        rate = svc.target_ops_per_s
        max_events = svc.max_events
        obs = self.obs
        if obs is not None:
            obs.event(
                "service_start",
                stream=self.stream.label,
                start_index=start_index,
                policy=sim.policy.describe(),
            )
        stopped = "end-of-stream"
        try:
            sim._schedule(sim.policy.first_trigger(store, iostats))
            for event in events:
                sim._event_index += 1
                sim._event_applied = False
                report.events_seen += 1
                applied = self._process(event)
                sim._event_applied = True
                if applied:
                    report.events_applied += 1
                    self._events_since_checkpoint += 1
                occupancy = store.db_size
                if occupancy > report.heap_peak_bytes:
                    report.heap_peak_bytes = occupancy
                if not tx.in_transaction:
                    while sim._clock() >= sim._due_at:
                        sim._collect()
                    if self._checkpoint_due():
                        self._checkpoint(report)
                    if self._shutdown_requested:
                        stopped = "shutdown"
                        break
                # max_events is an exact window boundary, honoured even
                # mid-transaction: soak drills rely on every segment
                # consuming precisely the same absolute stream window as
                # the reference, whatever index a segment started from.
                # (Graceful shutdown, by contrast, drains to quiescence.)
                if max_events is not None and report.events_seen >= max_events:
                    stopped = "max-events"
                    break
                if rate is not None:
                    ahead = (
                        run_started
                        + report.events_seen / rate
                        - time.monotonic()
                    )
                    if ahead > 0.001:
                        time.sleep(ahead)
                        report.paced_sleep_s += ahead
        except SimulatedCrash as crash:
            crash.event_index = sim._event_index
            crash.resume_index = (
                sim._tx_start_index
                if tx.in_transaction and sim._tx_start_index is not None
                else sim._event_index + (0 if not sim._event_applied else 1)
            )
            raise
        # Quiescent stop: flush a final checkpoint so a restart replays
        # nothing. (A malformed finite stream ending mid-transaction skips
        # it — checkpoints are only ever taken between transactions.)
        if not tx.in_transaction and report.events_applied:
            self._checkpoint(report)
        report.stopped = stopped
        report.next_index = start_index + report.events_seen
        report.wall_s = time.monotonic() - run_started
        self._finalise(report)
        return report

    # ------------------------------------------------------------------
    # Event admission and application
    # ------------------------------------------------------------------

    def _process(self, event: TraceEvent) -> bool:
        """Apply one stream event, or shed it. True when applied."""
        admission = self.admission
        if admission is None:
            self.sim._apply(event)
            self._sample(event)
            return True
        shed = self._shed_oids
        cls = event.__class__
        # Skip the remainder of a shed transaction block.
        if self._shed_txid is not None:
            if cls is CommitTransactionEvent or cls is AbortTransactionEvent:
                if event.txid == self._shed_txid:
                    self._shed_txid = None
                    admission.stats.shed_events += 1
                    return False
            admission.stats.shed_events += 1
            self._note_shed_references(event)
            return False
        # Cascade: anything referencing a shed object is itself shed (the
        # store has never seen those oids, so applying would fault).
        if shed and self._references_shed(event):
            admission.stats.shed_events += 1
            self._note_shed_references(event)
            return False
        # Admission: allocations must fit under the heap bound.
        if cls is CreateEvent:
            if not admission.admit(self.sim.store, event.size):
                admission.stats.shed_events += 1
                admission.stats.shed_objects += 1
                shed.add(event.oid)
                if self.sim.tx.in_transaction:
                    # Transactions are atomic: a rejected allocation sheds
                    # the whole block. Undo what already applied and skip
                    # to the block's end.
                    txid = self.sim.tx.current.txid
                    self.sim.tx.abort(txid)
                    self._shed_txid = txid
                    admission.stats.shed_transactions += 1
                if self.obs is not None:
                    self.obs.metrics.counter("service.backpressure.sheds").inc()
                return False
        self.sim._apply(event)
        self._prune_ledger(event)
        self._sample(event)
        return True

    def _sample(self, event: TraceEvent) -> None:
        sim = self.sim
        cls = event.__class__
        if cls is PhaseMarkerEvent:
            return
        if cls is IdleEvent:
            sim._handle_idle(event.ticks)
            return
        sim._note_activity()
        sim.sampler.on_event(sim.store, sim.store.iostats)

    def _references_shed(self, event: TraceEvent) -> bool:
        shed = self._shed_oids
        cls = event.__class__
        if cls is CreateEvent:
            return any(
                target is not None and target in shed
                for _slot, target in event.pointers
            )
        if cls is PointerWriteEvent:
            return event.src in shed or (
                event.target is not None and event.target in shed
            )
        oid = getattr(event, "oid", None)
        return oid is not None and oid in shed

    def _note_shed_references(self, event: TraceEvent) -> None:
        """Cascade and prune the shed ledger for a skipped event."""
        if event.__class__ is CreateEvent:
            self._shed_oids.add(event.oid)
            self.admission.stats.shed_objects += 1
        self._prune_ledger(event)

    def _prune_ledger(self, event: TraceEvent) -> None:
        """Drop shed oids once their death is announced by the stream.

        A ``dies`` annotation is the stream's statement that no later
        event references those objects, so the ledger can forget them —
        this is what keeps shed-set memory bounded over unbounded streams.
        """
        if self._shed_oids and event.__class__ is PointerWriteEvent and event.dies:
            self._shed_oids.difference_update(event.dies)

    # ------------------------------------------------------------------
    # Durability and collection
    # ------------------------------------------------------------------

    def _forced_collect(self) -> bool:
        # Backpressure hit the heap bound: fall back to stop-the-world.
        # force=True bypasses the parallel scheduler's pump phase so the
        # collection happens *now* (a valid speculative trace is still
        # harvested, but admission never proceeds on a promise).
        store = self.sim.store
        before = store.db_size
        self.sim._collect(force=True)
        return store.db_size < before

    def _checkpoint_due(self) -> bool:
        svc = self.service
        if self._events_since_checkpoint >= svc.checkpoint_every_events:
            return True
        return (
            svc.max_log_records is not None
            and self.sim.redo_log is not None
            and self.sim.redo_log.suffix_length > svc.max_log_records
        )

    def _checkpoint(self, report: ServiceReport) -> None:
        """Snapshot, pay the WAL cost, truncate the log (quiescent only).

        Ordering is crash-safe: the WAL write (which an injected
        ``io.write`` fault may kill) happens *before* the redo log is
        truncated, so a crash mid-checkpoint leaves the previous
        checkpoint + full suffix intact and recovery unaffected.
        """
        sim = self.sim
        snapshot = build_checkpoint(sim.store, sim._event_index + 1)
        if sim.tx.wal is not None:
            sim.tx.wal.checkpoint(snapshot.estimated_bytes)
        dropped = sim.redo_log.install_checkpoint(snapshot)
        self._events_since_checkpoint = 0
        report.checkpoints += 1
        if self.obs is not None:
            self.obs.event(
                "checkpoint",
                event_index=snapshot.event_index,
                objects=len(snapshot.objects),
                log_records_dropped=dropped,
                heap_bytes=sim.store.db_size,
            )
            self.obs.metrics.counter("service.checkpoints").inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _finalise(self, report: ServiceReport) -> None:
        from repro.faults.drill import state_digest

        sim = self.sim
        report.collections = sim.collector.collections_performed
        report.final_digest = state_digest(sim.store)
        if sim.store.db_size > report.heap_peak_bytes:
            report.heap_peak_bytes = sim.store.db_size
        if sim.redo_log is not None:
            report.log_appended_total = sim.redo_log.appended_total
            report.log_truncated_total = sim.redo_log.truncated_total
            report.log_suffix_length = sim.redo_log.suffix_length
        if sim.tx.wal is not None:
            report.wal = sim.tx.wal.stats.as_metrics()
        if self.admission is not None:
            report.backpressure = self.admission.stats
        obs = self.obs
        if obs is not None:
            metrics = obs.metrics
            metrics.gauge("service.events_seen").set(report.events_seen)
            metrics.gauge("service.events_applied").set(report.events_applied)
            metrics.gauge("service.next_index").set(report.next_index)
            metrics.gauge("service.collections").set(report.collections)
            metrics.gauge("service.heap_peak_bytes").set(report.heap_peak_bytes)
            metrics.gauge("service.log_suffix").set(report.log_suffix_length)
            metrics.set_many(
                report.backpressure.as_metrics(),
                prefix="service.backpressure.",
            )
            if report.wal:
                metrics.set_many(report.wal, prefix="wal.")
            metrics.gauge("service.paced_sleep_s").set(
                round(report.paced_sleep_s, 6)
            )
            obs.event(
                "service_stop",
                stopped=report.stopped,
                events_seen=report.events_seen,
                events_applied=report.events_applied,
                checkpoints=report.checkpoints,
                digest=report.final_digest,
            )
