"""Long-running service mode: the simulator as a production-posture process.

The paper evaluates its controllers on finite 67k-event traces; this
package runs the same engine as a long-lived service over *unbounded*
event streams — the ROADMAP's online posture. The pieces:

* :mod:`repro.service.config` — :class:`ServiceConfig`, the service knobs
  (pacing, checkpoint cadence, heap/log bounds, backpressure mode);
* :mod:`repro.service.stream` — replayable unbounded event streams over
  the grammar/tenant streaming generators (``events_from(start_index)``
  is the unbounded analogue of ``CompiledTrace.replay``);
* :mod:`repro.service.backpressure` — admission control that keeps the
  modelled heap under a hard bound by forcing collections and, as a last
  resort, shedding incoming work (degradation counters in ``repro.obs``);
* :mod:`repro.service.server` — :class:`GcService`, the event loop:
  periodic WAL checkpoints + redo-log truncation, graceful drain on
  SIGTERM, telemetry heartbeats;
* :mod:`repro.service.soak` — crash-soak drills: kill the service at
  fault-plan-chosen points, recover from checkpoint + log suffix, resume
  the stream at the exact event index, and assert byte-identical
  committed state against an uncrashed reference.
"""

from repro.service.backpressure import AdmissionController, BackpressureStats
from repro.service.config import ServiceConfig
from repro.service.server import GcService, ServiceReport
from repro.service.soak import SoakReport, run_soak_drill
from repro.service.stream import (
    EventStream,
    ReplayableStream,
    finite_stream,
    grammar_stream,
    tenant_stream,
)

__all__ = sorted(
    [
        "AdmissionController",
        "BackpressureStats",
        "EventStream",
        "GcService",
        "ReplayableStream",
        "ServiceConfig",
        "ServiceReport",
        "SoakReport",
        "finite_stream",
        "grammar_stream",
        "run_soak_drill",
        "tenant_stream",
    ]
)
