"""Replayable event streams: the unbounded analogue of compiled traces.

A finite drill resumes after a crash with ``CompiledTrace.replay(start)``;
a service over an unbounded stream cannot materialise the trace, so it
resumes by *regenerating*: every stream here is a pure function of its
construction arguments, and :meth:`EventStream.events_from` re-instantiates
the generator and skips to the requested absolute index. Determinism of
the underlying generators (grammar/tenant streaming modes are seeded and
side-effect-free) makes the skip exact — property-tested in
``tests/service``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from repro.events import TraceEvent
from repro.workload.grammar import GrammarWorkload, WorkloadConfig
from repro.workload.tenants import TenantMix, TenantMixConfig


@runtime_checkable
class EventStream(Protocol):
    """Anything that can (re)start its event stream at an absolute index."""

    #: Display label for reports and telemetry.
    label: str

    def events_from(self, start_index: int = 0) -> Iterator[TraceEvent]:
        """A fresh iterator positioned at absolute event ``start_index``."""
        ...


@dataclass
class ReplayableStream:
    """An :class:`EventStream` over a zero-argument generator factory.

    The factory must return a *new* iterator reproducing the identical
    event sequence on every call (seeded generators qualify; a one-shot
    iterator object does not).
    """

    factory: Callable[[], Iterator[TraceEvent]]
    label: str = "stream"
    #: Plain-data description, for logs and soak reports.
    material: dict[str, Any] = field(default_factory=dict)

    def events_from(self, start_index: int = 0) -> Iterator[TraceEvent]:
        if start_index < 0:
            raise ValueError(f"start_index must be >= 0, got {start_index}")
        events = self.factory()
        if start_index:
            events = itertools.islice(events, start_index, None)
        return events


def grammar_stream(
    config: WorkloadConfig, seed: int = 0, max_live_clusters: int = 512
) -> ReplayableStream:
    """Unbounded single-tenant stream over a grammar config."""
    return ReplayableStream(
        factory=lambda: GrammarWorkload(config, seed=seed).stream(
            max_live_clusters
        ),
        label=config.name,
        material={
            "kind": "grammar",
            "config": config.name,
            "seed": seed,
            "max_live_clusters": max_live_clusters,
        },
    )


def tenant_stream(
    config: TenantMixConfig, seed: int = 0, max_live_clusters: int = 512
) -> ReplayableStream:
    """Unbounded multi-tenant stream over a tenant-mix config."""
    return ReplayableStream(
        factory=lambda: TenantMix(config, seed=seed).stream(max_live_clusters),
        label=config.name,
        material={
            "kind": "tenant-mix",
            "config": config.name,
            "seed": seed,
            "max_live_clusters": max_live_clusters,
        },
    )


def finite_stream(
    events: Sequence[TraceEvent], label: str = "finite"
) -> ReplayableStream:
    """A finite, materialised stream (tests and small bounded runs)."""
    events = list(events)
    return ReplayableStream(
        factory=lambda: iter(events),
        label=label,
        material={"kind": "finite", "events": len(events)},
    )
