"""Admission control: keep the modelled heap under a hard bound.

The service's bounded-memory guarantee is enforced *before* work is
applied: an incoming allocation that would push ``store.db_size`` past
``max_heap_bytes`` first forces garbage collections (the collector is the
legitimate way to make room); only when collection stops making progress
is the work degraded — shed outright, or counted as delayed and then shed
as the last resort. The heap bound is therefore an invariant, not a goal:
tests assert ``db_size`` never exceeds it at any point in an overload run.

Degradation is observable: every counter here surfaces through the
service's telemetry metrics (``service.backpressure.*``) and the
``repro metrics`` CLI.

Determinism caveat (why drills run with backpressure off): whether an
event is shed depends on heap occupancy at admission time, which depends
on collection timing — and a crash/recovery cycle legitimately shifts the
collection schedule. Byte-identity soak drills therefore disable
admission; backpressure has its own overload acceptance test instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.storage.heap import ObjectStore


@dataclass
class BackpressureStats:
    """Cumulative admission-control outcomes."""

    #: Admission checks that found the bound would be exceeded.
    engaged: int = 0
    #: Collections forced to make room (both modes).
    forced_collections: int = 0
    #: Delay rounds recorded (``delay`` mode only).
    delays: int = 0
    #: Events dropped (the shed ledger counts everything skipped,
    #: including cascaded skips of events referencing shed objects).
    shed_events: int = 0
    #: Objects never created because their create event was shed.
    shed_objects: int = 0
    #: Whole transaction blocks skipped.
    shed_transactions: int = 0

    def as_metrics(self) -> dict:
        return {
            "engaged": self.engaged,
            "forced_collections": self.forced_collections,
            "delays": self.delays,
            "shed_events": self.shed_events,
            "shed_objects": self.shed_objects,
            "shed_transactions": self.shed_transactions,
        }


class AdmissionController:
    """Decides, per incoming allocation, whether the heap can take it.

    Args:
        max_heap_bytes: The hard bound on ``store.db_size``.
        mode: ``"shed"`` or ``"delay"`` (the ``"off"`` mode never
            constructs a controller).
        collect_once: Forces one collection; returns True when it reclaimed
            anything (the service wires this to the simulation's collect
            path so forced collections feed the policy loop like any
            other).
        max_forced_collections: Per-admission cap on forced collection
            attempts, against pathological selection policies.
    """

    def __init__(
        self,
        max_heap_bytes: int,
        mode: str,
        collect_once: Callable[[], bool],
        max_forced_collections: int = 8,
    ) -> None:
        if max_heap_bytes < 1:
            raise ValueError(f"max_heap_bytes must be >= 1, got {max_heap_bytes}")
        if mode not in ("shed", "delay"):
            raise ValueError(f"mode must be 'shed' or 'delay', got {mode!r}")
        self.max_heap_bytes = max_heap_bytes
        self.mode = mode
        self.collect_once = collect_once
        self.max_forced_collections = max_forced_collections
        self.stats = BackpressureStats()

    def admit(self, store: ObjectStore, incoming_bytes: int) -> bool:
        """True when ``incoming_bytes`` may be allocated within the bound.

        Forces collections until the allocation fits or collection stops
        reclaiming; a False return means the caller must shed the work —
        admitting it would break the heap invariant.
        """
        if store.db_size + incoming_bytes <= self.max_heap_bytes:
            return True
        self.stats.engaged += 1
        for _ in range(self.max_forced_collections):
            if self.mode == "delay":
                self.stats.delays += 1
            self.stats.forced_collections += 1
            reclaimed = self.collect_once()
            if store.db_size + incoming_bytes <= self.max_heap_bytes:
                return True
            if not reclaimed:
                break
        return False
