"""Crash-soak drills: kill the service repeatedly, demand byte-identity.

The finite-trace analogue lives in :mod:`repro.faults.drill`; a soak drill
is the same experiment run against the *service* posture instead:

1. a **reference** service consumes a bounded window of the stream with no
   faults, producing the committed reachable state an unfailing service
   reaches;
2. a **drilled** service consumes the same window with a fault plan
   attached. Every injected crash kills the simulated process mid-stream;
   the drill recovers from the last checkpoint plus the redo-log suffix
   (:func:`repro.tx.recovery.recover_with_info`), rebuilds a fresh service
   around the recovered store — rate/selection policies rebuilt from their
   specs — and resumes the stream at exactly ``crash.resume_index``.

Acceptance is byte-level and suffix-aware: the final committed reachable
state must hash identically to the reference's, and each recovery reports
whether it restored from a checkpoint and how many suffix records it
replayed — so tests can assert that post-checkpoint recovery did *not*
re-read the whole history (``RedoLog.appended_total`` keeps the lifetime
count for comparison).

Byte-identity requires ``backpressure="off"``: shed decisions depend on
collection timing, which crash/recovery legitimately shifts, so a drilled
run with admission control could diverge from its reference without any
bug. :func:`run_soak_drill` rejects such configs up front.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.drill import state_digest
from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.service.config import ServiceConfig
from repro.service.server import GcService, ServiceReport
from repro.service.stream import EventStream
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import PolicySpec, SelectionSpec, build_policy, build_selection
from repro.tx.recovery import RedoLog, recover_with_info


@dataclass
class RecoveryOutcome:
    """What one crash/recover cycle of the soak actually did."""

    #: Fault site that killed the service.
    site: str
    #: Absolute stream index the crash interrupted.
    event_index: int
    #: Absolute stream index the resumed service restarted from.
    resume_index: int
    #: Objects rebuilt into the recovered store.
    recovered_objects: int
    #: True when recovery restored a checkpoint snapshot first.
    from_checkpoint: bool
    #: Event index the restored checkpoint covered (-1 when none).
    checkpoint_event_index: int
    #: Redo records replayed after the checkpoint (the suffix).
    records_replayed: int
    #: Lifetime records the log had seen when this recovery ran — proves
    #: the replay was suffix-only whenever ``records_replayed`` is smaller.
    log_appended_total: int


@dataclass
class SoakReport:
    """Everything one crash-soak drill established."""

    #: Stream events in the soaked window.
    events_total: int
    #: Injected crashes survived.
    crashes: int = 0
    #: Per-crash recovery outcomes, in order.
    recoveries: list[RecoveryOutcome] = field(default_factory=list)
    #: Checkpoints installed across all segments (shared-log lifetime).
    checkpoints: int = 0
    #: Digest of the unfailed reference service's committed state.
    reference_digest: str = ""
    #: Digest of the drilled service's final committed state.
    final_digest: str = ""
    #: The final (uncrashed) segment's service report.
    final_segment: Optional[ServiceReport] = None
    #: The reference run's service report.
    reference: Optional[ServiceReport] = None
    #: The drilled injector's fault ledger (site, occurrence, effect).
    fired: list[tuple] = field(default_factory=list)

    @property
    def matches_reference(self) -> bool:
        """True when the drilled service ended byte-identical."""
        return self.reference_digest == self.final_digest

    @property
    def suffix_only(self) -> bool:
        """True when every post-checkpoint recovery replayed < lifetime log.

        Vacuously true when no recovery had a checkpoint to restore from
        (e.g. every crash landed before the first checkpoint cadence).
        """
        return all(
            r.records_replayed < r.log_appended_total
            for r in self.recoveries
            if r.from_checkpoint
        )


def run_soak_drill(
    stream: EventStream,
    policy: PolicySpec,
    seed: int = 0,
    selection: Optional[SelectionSpec] = None,
    sim_config: Optional[SimulationConfig] = None,
    service: Optional[ServiceConfig] = None,
    plan: Optional[FaultPlan] = None,
    max_crashes: int = 64,
    telemetry=None,
) -> SoakReport:
    """Run one crash-soak drill over a bounded stream window.

    Args:
        stream: The replayable event stream; both the reference and every
            resumed drilled segment regenerate from it, so it must be a
            pure function of its construction (all of
            :mod:`repro.service.stream`'s factories are).
        policy / selection: Specs, not instances — every segment rebuilds
            fresh policy state from scratch, exactly like the finite
            drill's recovery semantics.
        seed: Seed for policy/selection construction.
        sim_config: Base simulation config (redo log + WAL force-enabled
            by the service regardless).
        service: Service knobs. ``max_events`` is required (it bounds the
            soak window) and ``backpressure`` must be ``"off"`` (see the
            module docstring for why byte-identity demands it).
        plan: The failure schedule. Crash faults drive the soak.
        max_crashes: Safety valve against unbounded crash plans.
        telemetry: A RunTelemetry, or a path for a ``kind="soak"`` file,
            or None. One telemetry object observes the whole soak.

    Raises:
        ValueError: On a missing plan, unbounded window, or backpressure.
        RuntimeError: When ``max_crashes`` is exceeded.
    """
    if plan is None:
        raise ValueError("a crash-soak drill needs a FaultPlan (plan=)")
    svc = service or ServiceConfig(max_events=100_000)
    if svc.max_events is None:
        raise ValueError(
            "soak drills need a bounded window: set service.max_events"
        )
    if svc.backpressure != "off":
        raise ValueError(
            "soak drills compare byte-identical digests, which requires "
            'backpressure="off" (shed decisions depend on collection '
            "timing, which crash/recovery legitimately shifts)"
        )
    config = sim_config or SimulationConfig()

    obs = None
    owns_obs = False
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        if isinstance(telemetry, RunTelemetry):
            obs = telemetry
        else:
            obs = RunTelemetry(
                telemetry, kind="soak", label=policy.kind, seed=seed
            )
            owns_obs = True

    total = svc.max_events

    def fresh(
        remaining: int,
        store=None,
        redo_log=None,
        faults=None,
        observed=False,
    ) -> GcService:
        return GcService(
            policy=build_policy(policy, seed),
            stream=stream,
            selection=(
                build_selection(selection, seed)
                if selection is not None
                else None
            ),
            sim_config=config,
            service=dataclasses.replace(svc, max_events=remaining),
            faults=faults,
            obs=obs if observed else None,
            store=store,
            redo_log=redo_log,
        )

    report = SoakReport(events_total=total)

    # Reference: same window, same config, no faults. Unobserved, so the
    # telemetry file describes the drilled service's one coherent timeline.
    reference = fresh(total)
    if obs is not None:
        with obs.span("reference"):
            report.reference = reference.run()
    else:
        report.reference = reference.run()
    report.reference_digest = report.reference.final_digest

    # Drilled service: one injector and one redo log for the whole soak, so
    # occurrence counters survive crashes and checkpoint history carries
    # across segments.
    injector = FaultInjector(plan)
    log = RedoLog()
    start = 0
    store = None
    while True:
        gcs = fresh(
            total - start,
            store=store,
            redo_log=log,
            faults=injector,
            observed=True,
        )
        try:
            if obs is not None:
                with obs.span("soak_segment", start_index=start):
                    segment = gcs.run(start_index=start)
            else:
                segment = gcs.run(start_index=start)
            report.final_segment = segment
            break
        except SimulatedCrash as crash:
            report.crashes += 1
            if report.crashes > max_crashes:
                raise RuntimeError(
                    f"soak exceeded max_crashes={max_crashes}; plan {plan} "
                    "appears to crash unboundedly"
                ) from crash
            appended_before = log.appended_total
            recovered, info = recover_with_info(log, store_config=config.store)
            log.truncate_uncommitted()
            start = crash.resume_index
            store = recovered
            report.recoveries.append(
                RecoveryOutcome(
                    site=crash.site,
                    event_index=crash.event_index,
                    resume_index=crash.resume_index,
                    recovered_objects=info.objects,
                    from_checkpoint=info.from_checkpoint,
                    checkpoint_event_index=info.checkpoint_event_index,
                    records_replayed=info.records_replayed,
                    log_appended_total=appended_before,
                )
            )
            if obs is not None:
                obs.event(
                    "crash",
                    site=crash.site,
                    event_index=crash.event_index,
                    resume_index=crash.resume_index,
                )
                obs.event(
                    "recovered",
                    objects=info.objects,
                    from_checkpoint=info.from_checkpoint,
                    records_replayed=info.records_replayed,
                    resume_index=start,
                )
                obs.metrics.counter("soak.recoveries").inc()

    report.final_digest = state_digest(gcs.sim.store)
    report.checkpoints = log.checkpoints_installed
    report.fired = [(f.site, f.occurrence, f.effect) for f in injector.fired]
    if obs is not None:
        obs.metrics.gauge("soak.crashes").set(report.crashes)
        obs.metrics.gauge("soak.checkpoints").set(report.checkpoints)
        obs.event(
            "soak_complete",
            crashes=report.crashes,
            checkpoints=report.checkpoints,
            matches_reference=report.matches_reference,
            suffix_only=report.suffix_only,
        )
        if owns_obs:
            obs.close()
    return report
