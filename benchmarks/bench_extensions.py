"""Benches for the §5 future-work extensions (design-choice ablations).

The paper sketches two extensions; these benches quantify the design
choices behind them on controlled synthetic workloads:

* **Opportunism** — a wrapped policy that collects during quiescent periods
  "to reduce the garbage in the database" beyond its user-stated limits.
* **Coupling** — SAIO scaled by SAGA-style cost-effectiveness estimates, so
  the I/O budget is not burned on empty collections during garbage-free
  stretches.
"""

import pytest

from repro.core.estimators import FgsHbEstimator, OracleEstimator
from repro.core.extensions import CoupledSaioSagaPolicy, OpportunisticPolicy
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.sim.report import format_table
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)


def _run(policy, phases, seed=0, initial_clusters=150):
    workload = SyntheticWorkload(phases, seed=seed, initial_clusters=initial_clusters)
    simulation = Simulation(
        policy=policy,
        config=SimulationConfig(store=STORE, preamble_collections=2),
    )
    return simulation.run(workload.events())


QUIESCENT_PHASES = [
    SyntheticPhase(
        name="churn",
        operations=2000,
        create_weight=1,
        delete_weight=1,
        access_weight=1,
        cluster_size=8,
        object_size=128,
    ),
    SyntheticPhase(
        name="quiescent",
        operations=1200,
        create_weight=0,
        delete_weight=0,
        access_weight=0.2,
        idle_weight=4,
    ),
]

MIXED_PHASES = [
    SyntheticPhase(
        name="churn",
        operations=1500,
        create_weight=1,
        delete_weight=1,
        access_weight=1,
        cluster_size=8,
        object_size=128,
    ),
    SyntheticPhase(
        name="read-only",
        operations=3000,
        create_weight=0,
        delete_weight=0,
        access_weight=1,
    ),
    SyntheticPhase(
        name="churn-2",
        operations=1500,
        create_weight=1,
        delete_weight=1,
        access_weight=1,
        cluster_size=8,
        object_size=128,
    ),
]


@pytest.mark.benchmark(group="extensions")
def test_opportunism_drains_garbage_during_quiescence(benchmark, publish):
    def run_both():
        saga = lambda: SagaPolicy(  # noqa: E731 - local factory
            garbage_fraction=0.12,
            estimator=FgsHbEstimator(history=0.8),
            initial_interval=25,
        )
        plain = _run(saga(), QUIESCENT_PHASES)
        wrapped_policy = OpportunisticPolicy(
            saga(),
            estimator=OracleEstimator(),
            idle_threshold=10,
            min_garbage_bytes=4096,
        )
        wrapped = _run(wrapped_policy, QUIESCENT_PHASES)
        return plain, wrapped, wrapped_policy

    plain, wrapped, wrapped_policy = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report = format_table(
        ["policy", "collections", "opportunistic", "final garbage %"],
        [
            [
                "SAGA",
                plain.summary.collections,
                0,
                f"{plain.summary.final_garbage_fraction:.2%}",
            ],
            [
                "SAGA+opportunism",
                wrapped.summary.collections,
                wrapped_policy.opportunistic_collections,
                f"{wrapped.summary.final_garbage_fraction:.2%}",
            ],
        ],
        title="§5 extension: quiescent-period opportunism",
    )
    publish("extension_opportunism", report)

    # The wrapper actually volunteered extra collections...
    assert wrapped_policy.opportunistic_collections > 0
    # ...and ends the quiescent period with (much) less garbage resident.
    assert (
        wrapped.summary.final_garbage_fraction
        < plain.summary.final_garbage_fraction
    )


@pytest.mark.benchmark(group="extensions")
def test_coupling_improves_collection_cost_effectiveness(benchmark, publish):
    def run_both():
        plain = _run(SaioPolicy(io_fraction=0.15, initial_interval=100), MIXED_PHASES)
        coupled = _run(
            CoupledSaioSagaPolicy(
                io_fraction=0.15,
                garbage_fraction=0.10,
                estimator=FgsHbEstimator(history=0.8),
                max_scale=4.0,
                initial_interval=100,
            ),
            MIXED_PHASES,
        )
        return plain, coupled

    plain, coupled = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def stats(result):
        empties = sum(1 for r in result.collections if r.reclaimed_bytes == 0)
        reclaimed = result.summary.total_reclaimed_bytes
        yield_per_io = reclaimed / max(1, result.summary.gc_io_total)
        return empties, reclaimed, yield_per_io

    plain_empty, plain_reclaimed, plain_yield = stats(plain)
    coupled_empty, coupled_reclaimed, coupled_yield = stats(coupled)

    report = format_table(
        ["policy", "collections", "empty collections", "reclaimed (KB)", "yield B/IO"],
        [
            ["SAIO", plain.summary.collections, plain_empty,
             f"{plain_reclaimed / 1024:.0f}", f"{plain_yield:.0f}"],
            ["SAIO×SAGA", coupled.summary.collections, coupled_empty,
             f"{coupled_reclaimed / 1024:.0f}", f"{coupled_yield:.0f}"],
        ],
        title="§5 extension: SAIO coupled with SAGA cost-effectiveness",
    )
    publish("extension_coupling", report)

    # Coupling cuts empty collections drastically and improves bytes
    # reclaimed per unit of collector I/O, without reclaiming less overall.
    assert coupled_empty < 0.5 * max(1, plain_empty)
    assert coupled_yield > plain_yield
    assert coupled_reclaimed > 0.8 * plain_reclaimed
