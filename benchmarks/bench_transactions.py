"""Bench: adaptive rate control under transactional churn with aborts.

Beyond-the-paper experiment for the transaction substrate: SAGA's accuracy
must be invariant to the abort rate (rolled-back work leaves no signal in
its clocks or garbage accounting), and the store must stay byte-consistent
through arbitrary interleavings of commits, aborts, and collections.
"""

import pytest

from repro.core.estimators import OracleEstimator
from repro.core.saga import SagaPolicy
from repro.sim.report import format_table
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.storage.validation import validate_store
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)
TARGET = 0.12


def _run(abort_probability: float, seed: int = 9):
    spec = TransactionalSpec(
        transactions=250,
        ops_per_transaction=4,
        abort_probability=abort_probability,
        cluster_size=6,
        object_size=120,
    )
    workload = TransactionalWorkload(spec, seed=seed, initial_clusters=120)
    simulation = Simulation(
        policy=SagaPolicy(
            garbage_fraction=TARGET, estimator=OracleEstimator(), initial_interval=20
        ),
        config=SimulationConfig(store=STORE, preamble_collections=5),
    )
    return workload, simulation.run(workload.events())


@pytest.mark.benchmark(group="transactions")
def test_saga_accuracy_invariant_to_abort_rate(benchmark, publish):
    def sweep():
        return [(p, *_run(p)) for p in (0.0, 0.25, 0.5)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    achieved = []
    for abort_probability, workload, result in results:
        summary = result.summary
        store = result.store
        rows.append(
            [
                f"{abort_probability:.0%}",
                workload.aborted_transactions,
                summary.collections,
                f"{summary.garbage_fraction_mean:.2%}",
                store.pointer_overwrites,
            ]
        )
        achieved.append(summary.garbage_fraction_mean)

        # Integrity through aborts + collections.
        assert validate_store(store, strict=False).ok
        assert store.check_death_annotations() == set()
        assert store.garbage.undeclared == 0

    publish(
        "transactions_abort_sweep",
        format_table(
            ["abort rate", "aborted", "collections", "mean garbage", "overwrite clock"],
            rows,
            title=f"SAGA @ {TARGET:.0%} garbage vs transaction abort rate",
        ),
    )

    # Accuracy is invariant to the abort rate (within sampling noise) and
    # near the target plus the sawtooth offset.
    assert max(achieved) - min(achieved) < 0.03
    for value in achieved:
        assert value == pytest.approx(TARGET, abs=0.05)

    # More aborts ⇒ strictly less committed work reaches the clocks.
    clocks = [row[4] for row in rows]
    assert clocks[0] > clocks[1] > clocks[2]
