"""Table 1: OO7 database parameters, verified on generated databases."""

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, publish):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    publish("table1", format_table1(result))

    # Structural checks against Table 1 and §3.3's quoted properties.
    assert result.small_prime.num_comp_per_module == 150
    assert result.small.num_comp_per_module == 500
    assert result.small_prime.num_assm_levels == 6
    assert result.small.num_assm_levels == 7

    by_conn = {g.connectivity: g for g in result.generated}
    # Object population grows with connectivity (one connection object per
    # extra NumConnPerAtomic per part).
    assert by_conn[3].objects < by_conn[6].objects < by_conn[9].objects
    assert by_conn[9].objects - by_conn[3].objects == 2 * 3000 * 3
    # Database size roughly doubles from connectivity 3 to 9 (paper: 3.7 MB
    # to 7.9 MB; absolute sizes differ — see DESIGN.md substitutions).
    ratio = by_conn[9].db_bytes / by_conn[3].db_bytes
    assert 1.7 <= ratio <= 2.6
    # "Each object has four pointers pointing to it" at connectivity 3:
    # in-degree of an atomic part is NumConnPerAtomic + 1.
    assert by_conn[3].part_in_degree == pytest.approx(4.0, abs=0.01)
    assert by_conn[9].part_in_degree == pytest.approx(10.0, abs=0.01)
