"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, writes the
formatted report under ``results/``, prints it (visible with ``pytest -s``),
and asserts the paper's qualitative claims about that experiment.

Benchmarks default to the quick scale (3 seeds, reduced grids); set
``REPRO_FULL=1`` for the paper-scale grids recorded in EXPERIMENTS.md.
Set ``REPRO_JOBS=<n>`` (or ``0`` for one worker per CPU) to fan the
simulation runs inside each experiment out over worker processes — the
reports are byte-identical at any jobs setting.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def jobs() -> Optional[int]:
    """Worker-process count for the experiment engine.

    Defaults to 1 (in-process); ``REPRO_JOBS=4`` fans out over 4 workers,
    ``REPRO_JOBS=0`` means one worker per CPU.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    value = int(raw)
    return None if value == 0 else value


@pytest.fixture
def publish(results_dir):
    """Write a report under results/ and echo it to stdout."""

    def _publish(name: str, report: str) -> None:
        (results_dir / f"{name}.txt").write_text(report + "\n")
        print(f"\n{report}\n")

    return _publish
