"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, writes the
formatted report under ``results/``, prints it (visible with ``pytest -s``),
and asserts the paper's qualitative claims about that experiment.

Benchmarks default to the quick scale (3 seeds, reduced grids); set
``REPRO_FULL=1`` for the paper-scale grids recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Write a report under results/ and echo it to stdout."""

    def _publish(name: str, report: str) -> None:
        (results_dir / f"{name}.txt").write_text(report + "\n")
        print(f"\n{report}\n")

    return _publish
