"""Figure 6: time-varying behaviour of the CGS/CB and FGS/HB estimators."""

import pytest

from repro.experiments.figure6 import format_figure6, run_figure6


@pytest.mark.benchmark(group="figure6")
def test_figure6(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure6, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure6", format_figure6(result))

    cgs = result.series["cgs-cb"]
    fgs = result.series["fgs-hb"]

    def mean_jump(series):
        values = series.estimated
        jumps = [abs(b - a) for a, b in zip(values, values[1:])]
        return sum(jumps) / max(1, len(jumps))

    def mean_bias(series):
        pairs = list(zip(series.estimated, series.actual))
        return sum(e - a for e, a in pairs) / max(1, len(pairs))

    def mean_abs_error(series):
        pairs = list(zip(series.estimated, series.actual))
        return sum(abs(e - a) for e, a in pairs) / max(1, len(pairs))

    # Figure 6a: "CGS/CB exhibits widely varying estimates … and a
    # significant overestimation of the actual amount of garbage".
    assert mean_jump(cgs) > 3 * mean_jump(fgs)
    assert mean_bias(cgs) > 0.05

    # Figure 6b: "FGS/HB shows a consistently accurate estimate … even when
    # the application behavior changes", with much less variation.
    assert mean_abs_error(fgs) < 0.5 * mean_abs_error(cgs)
    assert mean_jump(fgs) < 0.03

    # The rate of collection is controlled by the heuristic, so the two
    # runs perform different numbers of collections (as the paper notes).
    assert len(cgs.records) != len(fgs.records)

    # No collections occur inside the read-only Traverse phase: overwrite
    # time does not progress there.
    for series in (cgs, fgs):
        assert not any(r.phase == "Traverse" for r in series.records)
