"""Figure 5: SAGA accuracy per garbage estimator (oracle, CGS/CB, FGS/HB)."""

import pytest

from repro.experiments.figure5 import format_figure5, run_figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure5, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure5", format_figure5(result))

    oracle = result.sweeps["oracle"]
    cgs_cb = result.sweeps["cgs-cb"]
    fgs_hb = result.sweeps["fgs-hb"]

    # "The SAGA policy using the oracle is extremely accurate."
    for point in oracle:
        assert point.mean == pytest.approx(point.requested, abs=0.015)

    # "The CGS/CB heuristic is quite poor at achieving the requested
    # garbage percentage" — and insensitive to the request: the achieved
    # values barely move across the sweep.
    cgs_means = [p.mean for p in cgs_cb]
    assert max(cgs_means) - min(cgs_means) < 0.5 * (
        cgs_cb[-1].requested - cgs_cb[0].requested
    ) + 0.05
    cgs_total_error = sum(abs(p.error) for p in cgs_cb)

    # "The FGS/HB policy is much better" — with a small systematic
    # overshoot (the "bump").
    fgs_total_error = sum(abs(p.error) for p in fgs_hb)
    assert fgs_total_error < cgs_total_error
    fgs_means = [p.mean for p in fgs_hb]
    assert fgs_means == sorted(fgs_means)  # tracks the request
    for point in fgs_hb:
        assert point.error >= -0.02  # overshoot, not undershoot
        assert point.error <= 0.10

    # "The error bars, especially for the FGS/HB heuristic, are very
    # narrow. The CGS/CB heuristic shows larger error bars."
    fgs_spread = max(p.maximum - p.minimum for p in fgs_hb)
    cgs_spread = max(p.maximum - p.minimum for p in cgs_cb)
    assert fgs_spread < cgs_spread

    # Quality ordering: oracle beats FGS/HB at every requested level (CGS/CB
    # is compared on total error above — its flat curve inevitably crosses
    # the diagonal at one point).
    for o, f in zip(oracle, fgs_hb):
        assert abs(o.error) <= abs(f.error) + 0.01
