"""Figure 4: SAIO accuracy over the requested GC-I/O percentage range."""

import pytest

from repro.experiments.figure4 import format_figure4, run_figure4


@pytest.mark.benchmark(group="figure4")
def test_figure4(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure4, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure4", format_figure4(result))

    # "The SAIO policy is very accurate at controlling the garbage
    # collection I/O percentage."
    for point in result.points:
        assert point.mean == pytest.approx(point.requested, abs=0.02), (
            f"requested {point.requested:.0%}, achieved {point.mean:.2%}"
        )
        # Error bars are narrow ("in many instances hard to distinguish").
        assert point.maximum - point.minimum < 0.03

    # Achieved tracks requested monotonically across the sweep.
    means = [p.mean for p in result.points]
    assert means == sorted(means)
