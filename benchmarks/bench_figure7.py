"""Figure 7: FGS/HB history-parameter study and rate/yield/garbage traces."""

import pytest

from repro.experiments.figure7 import format_figure7, run_figure7


def _mean_abs_error(run):
    pairs = list(zip(run.estimated, run.actual))
    return sum(abs(e - a) for e, a in pairs) / max(1, len(pairs))


def _mean_jump(run):
    values = run.estimated
    jumps = [abs(b - a) for a, b in zip(values, values[1:])]
    return sum(jumps) / max(1, len(jumps))


@pytest.mark.benchmark(group="figure7")
def test_figure7(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure7, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure7", format_figure7(result))

    h50 = result.runs[0.5]
    h80 = result.runs[0.8]
    h95 = result.runs[0.95]

    # Figure 7a: h=0.5 is responsive but noisy — its estimate moves more
    # from collection to collection than the practical h=0.8 setting.
    assert _mean_jump(h50) > _mean_jump(h80) > _mean_jump(h95)

    # h=0.8 is the practical middle ground the paper uses: its tracking
    # error is no worse than the sluggish extreme.
    assert _mean_abs_error(h80) <= _mean_abs_error(h95) + 0.02

    # Figure 7b (top): the cold start begins at the high bootstrap cadence
    # (the very first interval is short), wanders while the controller is
    # still below target (Δt stretches toward the clamp), then settles.
    intervals = h80.intervals
    assert len(intervals) > 10
    settled_window = intervals[len(intervals) // 3 :]
    settled = sum(settled_window) / len(settled_window)
    assert intervals[0] < settled
    # The settled rate is in the paper's ballpark of one collection per
    # ~200 overwrites.
    assert 100 <= settled <= 500
    # Settled intervals are far from both clamps (Δt_min=2, Δt_max=1000 are
    # "rarely utilized" per §2.3).
    clamped = sum(1 for i in settled_window if i <= 4 or i >= 990)
    assert clamped <= len(settled_window) // 4

    # Figure 7b (middle): Reorg2 yields less garbage per collection as it
    # executes — the last quarter's mean yield is below the overall mean.
    yields = h80.yields
    tail = yields[3 * len(yields) // 4 :]
    assert sum(tail) / len(tail) < sum(yields) / len(yields)
