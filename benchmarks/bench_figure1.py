"""Figure 1: collection rate vs I/O operations (a) and garbage collected (b)."""

import pytest

from repro.experiments.figure1 import format_figure1, run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure1, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure1", format_figure1(result))
    rows = {r.rate: r for r in result.rows}
    fastest, slowest = min(rows), max(rows)

    # Figure 1a: very frequent collection inflates total I/O well beyond the
    # sparse end ("a collection rate of 50 results in excessive numbers of
    # I/O operations").
    assert rows[fastest].total_io_mean > 1.5 * rows[slowest].total_io_mean
    assert rows[fastest].gc_io_mean > rows[fastest].app_io_mean
    # GC I/O decreases monotonically as the rate coarsens.
    gc_io = [rows[rate].gc_io_mean for rate in sorted(rows)]
    assert gc_io == sorted(gc_io, reverse=True)
    # Application I/O *increases* as collection gets sparse (lost locality
    # and accumulated garbage).
    assert rows[slowest].app_io_mean > rows[fastest].app_io_mean

    # Figure 1b: total garbage collected falls off with the rate ("a rate of
    # 800 results in little garbage being collected").
    collected = [rows[rate].collected_mean for rate in sorted(rows)]
    assert collected == sorted(collected, reverse=True)
    assert rows[slowest].collected_mean < 0.5 * rows[fastest].collected_mean
