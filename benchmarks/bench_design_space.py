"""Benches for the §2.4 estimator design space and §3.4 reclustering."""

import pytest

from repro.experiments.clustering_exp import (
    format_clustering_experiment,
    run_clustering_experiment,
)
from repro.experiments.estimator_space import (
    format_estimator_space,
    run_estimator_space,
)


@pytest.mark.benchmark(group="design-space")
def test_estimator_design_space(benchmark, publish, jobs):
    """§2.4's two axes do what the paper says: fine grain state removes the
    selection-induced bias, history behaviour removes the jitter, and the
    recommended FGS/HB corner combines both."""
    result = benchmark.pedantic(run_estimator_space, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_estimator_space", format_estimator_space(result))
    rows = {row.estimator: row for row in result.rows}

    # State axis: fine grain slashes the estimation bias.
    assert abs(rows["fgs-cb"].estimate_bias) < 0.5 * abs(rows["cgs-cb"].estimate_bias)
    assert abs(rows["fgs-hb"].estimate_bias) < 0.5 * abs(rows["cgs-hb"].estimate_bias)

    # Behaviour axis: history smoothing cuts estimate jitter on both states.
    assert rows["cgs-hb"].estimate_jitter < rows["cgs-cb"].estimate_jitter
    assert rows["fgs-hb"].estimate_jitter < rows["fgs-cb"].estimate_jitter

    # The oracle anchors the scale.
    assert rows["oracle"].estimate_abs_error == pytest.approx(0.0, abs=1e-9)

    # FGS/HB has the lowest absolute estimation error of the practical four
    # (allowing a small tolerance against FGS/CB, its close sibling).
    practical = [rows[name].estimate_abs_error for name in ("cgs-cb", "cgs-hb", "fgs-cb")]
    assert rows["fgs-hb"].estimate_abs_error <= min(practical) + 0.01


@pytest.mark.benchmark(group="design-space")
def test_reclustering_behaviour(benchmark, publish):
    """§3.4: Reorg1 preserves clustering, Reorg2 breaks it; compaction
    recovers page footprint but cannot un-scatter composites."""
    result = benchmark.pedantic(run_clustering_experiment, rounds=1, iterations=1)
    publish("ablation_clustering", format_clustering_experiment(result))
    rows = {row.state: row for row in result.rows}

    fresh = rows["after GenDB"]
    reorg1 = rows["after Reorg1"]
    reorg2 = rows["after Reorg2"]
    collected = rows["Reorg2 + full GC"]

    # Fresh databases are essentially perfectly clustered.
    assert fresh.mean_spread < 1.5
    assert fresh.clustered_fraction > 0.9

    # Reorg1 preserves clustering; Reorg2 destroys it.
    assert reorg1.mean_spread < fresh.mean_spread + 2.0
    assert reorg2.mean_spread > reorg1.mean_spread + 3.0
    assert reorg2.clustered_fraction < 0.2

    # De-clustering costs traversal locality (Figure 1a's mechanism).
    assert reorg2.hit_rate < reorg1.hit_rate < fresh.hit_rate + 1e-9

    # Compaction shrinks the traversal page footprint but cannot restore
    # per-composite clustering.
    assert collected.footprint_pages < reorg2.footprint_pages
    assert collected.mean_spread == pytest.approx(reorg2.mean_spread, abs=0.5)
