"""Fast end-to-end smoke target for the parallel experiment engine.

Runs the real CLI (``repro-experiments figure4 --seeds 0 1 --jobs 2``)
against a throwaway cache directory, twice: the first invocation exercises
multi-process fan-out and cache population, the second must answer every
run from the cache without simulating, and both must print byte-identical
reports. This is the cheap CI check that the engine, the cache and the CLI
wiring all still hang together — it completes in well under a minute at
quick scale.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main


@pytest.mark.benchmark(group="smoke")
def test_engine_smoke(benchmark, tmp_path, capsys):
    argv = [
        "figure4",
        "--seeds",
        "0",
        "1",
        "--jobs",
        "2",
        "--progress",
        "--cache-dir",
        str(tmp_path / "cache"),
    ]

    def cold_run():
        assert main(argv) == 0
        return capsys.readouterr()

    first = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    assert "0 cached" in first.out and "simulated" in first.out

    # Second invocation: every run answered from the cache.
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "0 simulated" in second.out
    assert re.search(r"\[\d+/\d+\].*\(cache\)", second.err)

    def strip_footer(text: str) -> str:
        return re.sub(r"\[figure4 completed in [^\]]*\]", "", text)

    assert strip_footer(first.out) == strip_footer(second.out)
