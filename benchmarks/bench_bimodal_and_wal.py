"""Benches for the document-churn (bimodal GPPO) and WAL-overhead studies."""

import pytest

from repro.core.estimators import FgsHbEstimator, OracleEstimator
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.oo7.config import SMALL_PRIME
from repro.sim.report import format_table
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload


@pytest.mark.benchmark(group="bimodal")
def test_document_churn_stresses_fgs_hb(benchmark, publish):
    """§2.1's large-object mode in action: with document churn the workload's
    garbage-per-overwrite becomes bimodal (~140 B vs 2000 B per overwrite).
    SAGA/oracle keeps its accuracy; FGS/HB degrades gracefully rather than
    collapsing — its exponential GPPO mean straddles the two modes."""

    def run(estimator, doc_churn):
        app = Oo7Application(SMALL_PRIME, seed=1, doc_churn_fraction=doc_churn)
        sim = Simulation(
            policy=SagaPolicy(garbage_fraction=0.10, estimator=estimator),
            config=SimulationConfig(preamble_collections=10),
        )
        return sim.run(app.events()).summary

    def sweep():
        return {
            ("oracle", 0.0): run(OracleEstimator(), 0.0),
            ("oracle", 0.8): run(OracleEstimator(), 0.8),
            ("fgs-hb", 0.0): run(FgsHbEstimator(0.8), 0.0),
            ("fgs-hb", 0.8): run(FgsHbEstimator(0.8), 0.8),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, f"{churn:.0%}", f"{summary.garbage_fraction_mean:.2%}", summary.collections]
        for (name, churn), summary in results.items()
    ]
    publish(
        "bimodal_doc_churn",
        format_table(
            ["estimator", "doc churn", "achieved garbage (10% req.)", "collections"],
            rows,
            title="§2.1 large-object mode: SAGA under bimodal garbage-per-overwrite",
        ),
    )

    # Oracle stays accurate regardless of the garbage-size mix.
    assert results[("oracle", 0.8)].garbage_fraction_mean == pytest.approx(0.10, abs=0.03)
    # FGS/HB stays in a usable band (no collapse), though its bump may grow.
    fgs_churn = results[("fgs-hb", 0.8)].garbage_fraction_mean
    assert 0.05 <= fgs_churn <= 0.25
    # Document churn adds real work: more garbage flows through the system.
    assert results[("oracle", 0.8)].collections > results[("oracle", 0.0)].collections


@pytest.mark.benchmark(group="wal")
def test_wal_overhead_rebalances_saio(benchmark, publish):
    """Logging I/O (a real ODBMS cost the paper's simulator omits, §3.2) is
    application I/O — under a SAIO budget, the collector's absolute I/O
    allowance grows with it while the requested *share* stays on target."""
    spec = TransactionalSpec(transactions=150, abort_probability=0.2)
    store_cfg = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)

    def run(enable_wal):
        workload = TransactionalWorkload(spec, seed=4, initial_clusters=60)
        sim = Simulation(
            policy=SaioPolicy(io_fraction=0.15, initial_interval=50),
            config=SimulationConfig(
                store=store_cfg,
                preamble_collections=0,
                enable_wal=enable_wal,
                wal_page_size=2048,
            ),
        )
        return sim.run(workload.events()).summary

    def both():
        return run(False), run(True)

    without, with_wal = benchmark.pedantic(both, rounds=1, iterations=1)
    publish(
        "wal_overhead",
        format_table(
            ["configuration", "app I/O", "GC I/O", "GC share", "collections"],
            [
                ["no logging", without.app_io_total, without.gc_io_total,
                 f"{without.gc_io_fraction:.2%}", without.collections],
                ["write-ahead log", with_wal.app_io_total, with_wal.gc_io_total,
                 f"{with_wal.gc_io_fraction:.2%}", with_wal.collections],
            ],
            title="Logging overhead under a 15% SAIO budget",
        ),
    )

    assert with_wal.app_io_total > 1.1 * without.app_io_total
    assert with_wal.gc_io_fraction == pytest.approx(0.15, abs=0.05)
    # A bigger I/O pie at a fixed share → more absolute collector I/O.
    assert with_wal.gc_io_total >= without.gc_io_total
