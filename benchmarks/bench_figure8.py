"""Figure 8: sensitivity of SAIO/SAGA accuracy to database connectivity."""

import pytest

from repro.experiments.figure8 import format_figure8, run_figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8(benchmark, publish, jobs):
    result = benchmark.pedantic(run_figure8, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("figure8", format_figure8(result))

    # "The results … are consistent with those [at connectivity 3]": SAIO
    # stays accurate at connectivities 6 and 9.
    for connectivity, points in result.saio.items():
        for point in points:
            assert point.mean == pytest.approx(point.requested, abs=0.02), (
                f"SAIO conn={connectivity}: requested {point.requested:.0%}, "
                f"achieved {point.mean:.2%}"
            )

    # SAGA with the oracle stays accurate at higher connectivities too.
    for (estimator, connectivity), points in result.saga.items():
        if estimator != "oracle":
            continue
        for point in points:
            assert point.mean == pytest.approx(point.requested, abs=0.02), (
                f"SAGA/oracle conn={connectivity}: requested "
                f"{point.requested:.0%}, achieved {point.mean:.2%}"
            )

    # FGS/HB keeps its Figure 5 character at higher connectivities:
    # achieved tracks the request with a bounded systematic overshoot.
    for (estimator, connectivity), points in result.saga.items():
        if estimator != "fgs-hb":
            continue
        means = [p.mean for p in points]
        assert means == sorted(means)
        for point in points:
            assert -0.02 <= point.error <= 0.12
