"""Ablation benches for the paper's in-passing claims (§2.1, §2.3, §4.1)."""

import pytest

from repro.experiments.ablations import (
    format_clock_ablation,
    format_fixed_heuristic,
    format_saio_history,
    format_selection_ablation,
    format_weight_ablation,
    run_clock_ablation,
    run_fixed_heuristic_ablation,
    run_saio_history_ablation,
    run_selection_ablation,
    run_weight_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_fixed_heuristic_fails(benchmark, publish, jobs):
    """§2.1: the "partition's worth of garbage" fixed rate fails miserably —
    the workload creates several times more garbage per overwrite than the
    average-connectivity calculation predicts."""
    result = benchmark.pedantic(run_fixed_heuristic_ablation, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_fixed_heuristic", format_fixed_heuristic(result))
    assert result.heuristic_rate > 1000  # the naive calculation is sparse
    assert result.measured_gpo > 2 * result.heuristic_gpo_prediction


@pytest.mark.benchmark(group="ablations")
def test_allocation_clock_is_the_wrong_trigger(benchmark, publish, jobs):
    """§2: "allocation and garbage creation are not always correlated in
    object databases" — with the same collection budget, the allocation
    clock wastes collections where no garbage exists and reclaims less."""
    result = benchmark.pedantic(run_clock_ablation, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_clock", format_clock_ablation(result))
    by_name = {row[0]: row for row in result.rows}
    overwrite = by_name["overwrite clock"]
    allocation = by_name["allocation clock"]
    # The allocation clock burns collections during garbage-free GenDB...
    assert float(allocation[2]) > float(overwrite[2]) + 5
    # ...has far more zero-yield collections...
    assert float(allocation[3].rstrip("%")) > float(overwrite[3].rstrip("%")) + 20
    # ...and reclaims less garbage with the same budget.
    assert float(allocation[4].split()[0]) < float(overwrite[4].split()[0])


@pytest.mark.benchmark(group="ablations")
def test_saio_history_parameter(benchmark, publish, jobs):
    """§4.1.1: "the use of any amount of history makes little difference
    with respect to the accuracy of the policy" on OO7."""
    result = benchmark.pedantic(run_saio_history_ablation, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_saio_history", format_saio_history(result))
    errors = [abs(float(row[3].rstrip("%"))) for row in result.rows]
    assert max(errors) < 1.5  # all within 1.5 percentage points


@pytest.mark.benchmark(group="ablations")
def test_cgs_cb_improves_under_random_selection(benchmark, publish, jobs):
    """§4.1.2: "if the partition selection policy … picked a random
    partition to collect, then the CGS/CB heuristic would provide a more
    accurate estimate"."""
    result = benchmark.pedantic(run_selection_ablation, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_selection", format_selection_ablation(result))
    by_name = {row[0]: row for row in result.rows}
    updated_bias = abs(float(by_name["updated-pointer"][1].rstrip("%")))
    random_bias = abs(float(by_name["random"][1].rstrip("%")))
    assert random_bias < updated_bias


@pytest.mark.benchmark(group="ablations")
def test_saga_weight_smoothing(benchmark, publish, jobs):
    """§2.3: Weight buffers the policy from rapid slope changes — some
    smoothing beats none, and the paper's 0.7 sits in the flat optimum."""
    result = benchmark.pedantic(run_weight_ablation, kwargs={"jobs": jobs}, rounds=1, iterations=1)
    publish("ablation_weight", format_weight_ablation(result))
    by_weight = {row[0]: row for row in result.rows}
    error_at = {w: abs(float(by_weight[w][2].rstrip("%"))) for w in by_weight}
    assert error_at["0.7"] <= error_at["0"] + 0.1
    spread_at = {w: float(by_weight[w][3].rstrip("%")) for w in by_weight}
    assert spread_at["0.7"] <= spread_at["0"]
