"""Self-adaptation on a synthetic workload with hostile phase changes.

The paper argues a collection-rate policy must be *self-adaptive* —
responsive and accurate under changing application behaviour. This example
builds a synthetic application whose phases differ wildly in garbage
creation (a heavy churn burst, a read-mostly lull, a trim-heavy phase, and
a quiescent stretch) and shows

* how SAGA/FGS-HB adapts its collection rate across the phases, and
* how the §5 opportunism extension exploits the quiescent phase to collect
  beyond the user-stated limits.

Run with::

    python examples/adaptive_workload.py
"""

from repro import (
    FgsHbEstimator,
    OpportunisticPolicy,
    OracleEstimator,
    SagaPolicy,
    Simulation,
    SimulationConfig,
    StoreConfig,
    SyntheticPhase,
    SyntheticWorkload,
)
from repro.sim.report import format_table, sparkline

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)

PHASES = [
    SyntheticPhase(
        name="churn-burst",
        operations=2500,
        create_weight=1.0,
        delete_weight=1.0,
        access_weight=1.0,
        cluster_size=8,
        object_size=128,
    ),
    SyntheticPhase(
        name="read-mostly",
        operations=2000,
        create_weight=0.05,
        delete_weight=0.05,
        access_weight=4.0,
        cluster_size=8,
        object_size=128,
    ),
    SyntheticPhase(
        name="trim-heavy",
        operations=1500,
        create_weight=1.0,
        delete_weight=0.2,
        trim_weight=2.0,
        access_weight=1.0,
        cluster_size=12,
        object_size=96,
    ),
    SyntheticPhase(
        name="quiescent",
        operations=800,
        create_weight=0.0,
        delete_weight=0.0,
        access_weight=0.2,
        idle_weight=4.0,
    ),
]


def build_policy(opportunistic: bool):
    saga = SagaPolicy(
        garbage_fraction=0.12,
        estimator=FgsHbEstimator(history=0.8),
        initial_interval=25,
    )
    if not opportunistic:
        return saga
    return OpportunisticPolicy(
        saga,
        estimator=OracleEstimator(),
        idle_threshold=10,
        min_garbage_bytes=4096,
    )


def run(opportunistic: bool):
    workload = SyntheticWorkload(PHASES, seed=11, initial_clusters=150)
    simulation = Simulation(
        policy=build_policy(opportunistic),
        config=SimulationConfig(store=STORE, preamble_collections=5),
    )
    return simulation.run(workload.events())


def main() -> None:
    plain = run(opportunistic=False)
    opportunistic = run(opportunistic=True)

    rows = []
    for label, result in (("SAGA", plain), ("SAGA + opportunism", opportunistic)):
        summary = result.summary
        extra = getattr(result.policy, "opportunistic_collections", 0)
        rows.append(
            [
                label,
                summary.collections,
                extra,
                f"{summary.garbage_fraction_mean:.2%}",
                f"{summary.final_garbage_fraction:.2%}",
            ]
        )
    print(
        format_table(
            ["policy", "collections", "opportunistic", "mean garbage", "final garbage"],
            rows,
            title="Adapting to phase changes (12% garbage target)",
        )
    )

    # Collection rate per phase: how the policy's interval adapts.
    print("\nCollections per phase (plain SAGA):")
    per_phase: dict[str, int] = {}
    for record in plain.collections:
        per_phase[record.phase] = per_phase.get(record.phase, 0) + 1
    for phase in PHASES:
        print(f"  {phase.name:>12s}: {per_phase.get(phase.name, 0)} collections")

    trail = [r.actual_garbage_fraction for r in plain.collections]
    if trail:
        print(f"\ngarbage over time:  {sparkline(trail)}")
    print(
        "\nDuring the quiescent stretch the plain policy cannot run (no"
        "\noverwrites advance its clock), while the opportunistic wrapper"
        "\nkeeps collecting and ends with less garbage in the database."
    )


if __name__ == "__main__":
    main()
