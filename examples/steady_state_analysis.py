"""Predict the simulator with pencil and paper (the analysis module).

The repository ships closed-form steady-state models of the policies'
behaviour (``repro.analysis``). This example derives the workload constants
from one trace, predicts a fixed-rate run's yield, garbage level, and
collection count — plus the exact I/O cost of the next collection — and
checks the predictions against actual simulations.

Run with::

    python examples/steady_state_analysis.py
"""

from repro import FixedRatePolicy, Oo7Application, Simulation, SimulationConfig, SMALL_PRIME
from repro.analysis import (
    WorkloadModel,
    expected_collections,
    fixed_rate_garbage_fraction,
    fixed_rate_yield,
    predict_collection_cost,
)
from repro.events import trace_stats
from repro.sim.report import format_table

RATE = 200  # overwrites per collection


def main() -> None:
    # 1. Characterise the workload from one pass over the trace.
    stats = trace_stats(Oo7Application(SMALL_PRIME, seed=5).events())
    print(
        f"workload constants: {stats.pointer_overwrites:,} overwrites, "
        f"{stats.garbage_per_overwrite:.0f} B of garbage per overwrite"
    )

    # 2. Run the actual simulation at a fixed rate.
    simulation = Simulation(
        policy=FixedRatePolicy(RATE),
        config=SimulationConfig(preamble_collections=5),
    )
    result = simulation.run(Oo7Application(SMALL_PRIME, seed=5).events())
    summary = result.summary
    records = result.collections[5:]
    measured_yield = sum(r.reclaimed_bytes for r in records) / len(records)

    # 3. Predict the same quantities from the model.
    model = WorkloadModel(
        garbage_per_overwrite=stats.garbage_per_overwrite,
        db_size=summary.final_db_size,
        partitions=summary.final_partitions,
    )
    rows = [
        [
            "collections",
            f"{expected_collections(stats.pointer_overwrites, RATE):.0f}",
            f"{summary.collections}",
        ],
        [
            "yield per collection",
            f"{fixed_rate_yield(model, RATE) / 1024:.1f} KB",
            f"{measured_yield / 1024:.1f} KB",
        ],
        [
            "mean garbage fraction",
            f"{fixed_rate_garbage_fraction(model, RATE):.1%}",
            f"{summary.garbage_fraction_mean:.1%}",
        ],
    ]
    print()
    print(
        format_table(
            ["quantity", "model prediction", "simulation"],
            rows,
            title=f"Fixed rate {RATE} overwrites/collection: model vs simulator",
        )
    )

    # 4. The per-collection I/O cost model is exact, not approximate.
    store = result.store
    sample = [pid for pid in range(store.partition_count) if store.partitions[pid].residents][:5]
    cost_rows = []
    from repro.gc.collector import CopyingCollector

    collector = CopyingCollector(store)
    for pid in sample:
        predicted = predict_collection_cost(store, pid)
        actual = collector.collect(pid)
        cost_rows.append(
            [
                pid,
                predicted.reads,
                actual.gc_reads,
                predicted.writes,
                actual.gc_writes,
                "exact" if (predicted.reads, predicted.writes) == (actual.gc_reads, actual.gc_writes) else "OFF",
            ]
        )
    print()
    print(
        format_table(
            ["partition", "pred reads", "actual reads", "pred writes", "actual writes", "match"],
            cost_rows,
            title="Per-collection I/O cost model (predict, then collect)",
        )
    )
    print(
        "\nThe cost model's exactness is the data behind SAIO's central"
        "\nassumption (successive collections cost about the same I/O)."
    )


if __name__ == "__main__":
    main()
