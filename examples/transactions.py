"""Transactions, aborts, and garbage collection living together.

The paper's simulation assumes the simplest concurrency model — the whole
database is locked during a collection (§3.2) — and defers real mechanisms
to other work. This example shows the repository's transactional layer
doing the next-step version of that model:

* application work grouped into transactions, a fraction of which abort;
* aborts physically undone — objects whose deaths roll back are
  resurrected, objects whose creations roll back vanish — with the
  policies' garbage-creation signals (overwrite clock, FGS counters)
  restored as if the transaction never ran;
* garbage collection deferred to transaction boundaries, where the SAGA
  policy keeps tracking its target as usual.

Run with::

    python examples/transactions.py
"""

from repro import (
    OracleEstimator,
    SagaPolicy,
    Simulation,
    SimulationConfig,
    StoreConfig,
    TransactionalSpec,
    TransactionalWorkload,
)
from repro.sim.report import format_table
from repro.storage.validation import validate_store

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)


def run(abort_probability: float):
    spec = TransactionalSpec(
        transactions=250,
        ops_per_transaction=4,
        abort_probability=abort_probability,
        cluster_size=6,
        object_size=120,
    )
    workload = TransactionalWorkload(spec, seed=9, initial_clusters=120)
    simulation = Simulation(
        policy=SagaPolicy(
            garbage_fraction=0.12, estimator=OracleEstimator(), initial_interval=20
        ),
        config=SimulationConfig(store=STORE, preamble_collections=5),
    )
    result = simulation.run(workload.events())
    return workload, result


def main() -> None:
    rows = []
    for abort_probability in (0.0, 0.25, 0.5):
        workload, result = run(abort_probability)
        summary = result.summary
        store = result.store
        report = validate_store(store, strict=False)
        rows.append(
            [
                f"{abort_probability:.0%}",
                workload.committed_transactions,
                workload.aborted_transactions,
                summary.collections,
                f"{summary.garbage_fraction_mean:.2%}",
                f"{store.pointer_overwrites:,}",
                "ok" if report.ok and store.check_death_annotations() == set() else "BROKEN",
            ]
        )

    print(
        format_table(
            [
                "abort rate",
                "committed",
                "aborted",
                "collections",
                "mean garbage",
                "overwrite clock",
                "store integrity",
            ],
            rows,
            title="SAGA @ 12% garbage under transactional churn with aborts",
        )
    )
    print(
        "\nAborted transactions leave no trace: the overwrite clock counts"
        "\nonly committed work, resurrected objects never appear in the"
        "\ngarbage accounting, and SAGA keeps hitting its target. Collection"
        "\nnever runs inside a transaction — the paper's whole-database-lock"
        "\nmodel, enforced at transaction granularity."
    )


if __name__ == "__main__":
    main()
