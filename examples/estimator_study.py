"""Study the SAGA garbage estimators across the full 2×2 design space.

The paper builds estimators from two axes — state granularity (coarse /
fine) and behaviour summary (current / history) — and evaluates CGS/CB and
FGS/HB. This example runs SAGA at a 10% garbage target under every corner
of the design space plus the oracle and the decaying-oracle blend, and
shows each estimator's time-varying estimate against the actual garbage.

Run with::

    python examples/estimator_study.py
"""

from repro import (
    DecayingOracleBlend,
    FgsHbEstimator,
    Oo7Application,
    SagaPolicy,
    Simulation,
    SimulationConfig,
    SMALL_PRIME,
    make_estimator,
)
from repro.sim.report import format_table, sparkline

TARGET = 0.10


def run_estimator(estimator, seed=3):
    policy = SagaPolicy(garbage_fraction=TARGET, estimator=estimator)
    simulation = Simulation(
        policy=policy, config=SimulationConfig(preamble_collections=10)
    )
    application = Oo7Application(SMALL_PRIME, seed=seed)
    return simulation.run(application.events())


def main() -> None:
    estimators = {
        "oracle": make_estimator("oracle"),
        "cgs-cb": make_estimator("cgs-cb"),
        "cgs-hb": make_estimator("cgs-hb"),
        "fgs-cb": make_estimator("fgs-cb"),
        "fgs-hb": make_estimator("fgs-hb"),
        "fgs-hb+oracle-blend": DecayingOracleBlend(FgsHbEstimator(0.8), decay=0.75),
    }

    rows = []
    trails = {}
    for name, estimator in estimators.items():
        result = run_estimator(estimator)
        summary = result.summary
        records = result.collections
        pairs = [
            (r.estimated_garbage_fraction or 0.0, r.actual_garbage_fraction)
            for r in records
        ]
        bias = sum(e - a for e, a in pairs) / max(1, len(pairs))
        error = sum(abs(e - a) for e, a in pairs) / max(1, len(pairs))
        rows.append(
            [
                name,
                summary.collections,
                f"{summary.garbage_fraction_mean:.2%}",
                f"{bias:+.2%}",
                f"{error:.2%}",
            ]
        )
        trails[name] = [a for _e, a in pairs]

    print(
        format_table(
            ["estimator", "collections", "achieved garbage", "estimate bias", "mean |est-act|"],
            rows,
            title=f"SAGA estimator design space at {TARGET:.0%} requested",
        )
    )
    print("\nActual garbage over time (per collection):")
    for name, trail in trails.items():
        if trail:
            print(f"  {name:>20s}  {sparkline(trail)}")
    print(
        "\nThe paper's findings reproduce: the oracle is near-perfect, fine"
        "\ngrain state beats coarse, history smoothing beats current-only,"
        "\nand the decaying oracle blend shortens the cold-start preamble."
    )


if __name__ == "__main__":
    main()
