"""Quickstart: run the OO7 application under an adaptive collection-rate policy.

This is the five-minute tour: generate the paper's Small' OO7 database,
drive it through the four-phase test application (GenDB → Reorg1 →
Traverse → Reorg2), and let the SAIO policy hold garbage-collection I/O at
10% of all I/O operations.

Run with::

    python examples/quickstart.py
"""

from repro import Oo7Application, SaioPolicy, Simulation, SimulationConfig, SMALL_PRIME


def main() -> None:
    # The paper's test database (Table 1, column Small') and application.
    application = Oo7Application(SMALL_PRIME, seed=42)

    # Ask the ODBMS to spend ~10% of its I/O operations on collection; the
    # policy adapts the collection rate to the application's behaviour.
    policy = SaioPolicy(io_fraction=0.10)

    simulation = Simulation(
        policy=policy,
        config=SimulationConfig(preamble_collections=2),
    )
    result = simulation.run(application.events())
    summary = result.summary

    print(f"policy:                {policy.describe()}")
    print(f"database events:       {summary.events:,}")
    print(f"pointer overwrites:    {summary.pointer_overwrites:,}")
    print(f"collections performed: {summary.collections}")
    print(f"application I/O:       {summary.app_io_total:,} operations")
    print(f"collector I/O:         {summary.gc_io_total:,} operations")
    print(f"requested GC I/O:      10.00%")
    print(f"achieved GC I/O:       {summary.gc_io_fraction:.2%}")
    print(f"garbage reclaimed:     {summary.total_reclaimed_bytes / 1024:.0f} KB")
    print(f"final database size:   {summary.final_db_size / 1e6:.2f} MB "
          f"in {summary.final_partitions} partitions")

    achieved = summary.gc_io_fraction
    assert abs(achieved - 0.10) < 0.03, "SAIO should land close to its target"
    print("\nSAIO hit its target — see examples/compare_policies.py for more.")


if __name__ == "__main__":
    main()
