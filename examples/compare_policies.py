"""Compare collection-rate policies on the OO7 workload.

Reproduces the paper's motivating observation (Figure 1 and §2.1): fixed
rates trade I/O against garbage and no single rate wins, the "clever"
partition-size heuristic fails, and the adaptive policies hit whatever
target the user actually cares about.

Run with::

    python examples/compare_policies.py
"""

from repro import (
    FixedRatePolicy,
    Oo7Application,
    OracleEstimator,
    PartitionHeuristicPolicy,
    SagaPolicy,
    SaioPolicy,
    Simulation,
    SimulationConfig,
    SMALL_PRIME,
    StoreConfig,
)
from repro.sim.report import format_table


def run_policy(policy, seed=7):
    application = Oo7Application(SMALL_PRIME, seed=seed)
    simulation = Simulation(
        policy=policy, config=SimulationConfig(preamble_collections=2)
    )
    return simulation.run(application.events()).summary


def main() -> None:
    store = StoreConfig()
    policies = [
        ("fixed, eager (50 ow)", FixedRatePolicy(50)),
        ("fixed, sparse (800 ow)", FixedRatePolicy(800)),
        (
            "§2.1 heuristic",
            PartitionHeuristicPolicy(
                partition_size=store.partition_size,
                avg_connectivity=4.0,
                avg_object_size=170.0,
            ),
        ),
        ("SAIO @ 10% I/O", SaioPolicy(io_fraction=0.10)),
        ("SAGA @ 10% garbage", SagaPolicy(garbage_fraction=0.10, estimator=OracleEstimator())),
    ]

    rows = []
    for name, policy in policies:
        summary = run_policy(policy)
        total_io = summary.app_io_total + summary.gc_io_total
        rows.append(
            [
                name,
                summary.collections,
                f"{total_io:,}",
                f"{summary.gc_io_fraction:.1%}",
                f"{summary.garbage_fraction_mean:.1%}",
                f"{summary.total_reclaimed_bytes / 1024:.0f} KB",
            ]
        )

    print(
        format_table(
            ["policy", "collections", "total I/O", "GC I/O share", "mean garbage", "reclaimed"],
            rows,
            title="Collection-rate policies on OO7 Small' (one seed)",
        )
    )
    print(
        "\nReading the table: the eager fixed rate wastes I/O; the sparse one"
        "\nstrands garbage; the §2.1 heuristic collects far too rarely; SAIO"
        "\nand SAGA each hit exactly the dimension their user asked about."
    )


if __name__ == "__main__":
    main()
