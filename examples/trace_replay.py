"""Record a workload trace to a file, inspect it, and replay it.

The original system was trace-driven from files [CWZ93]; this example shows
the equivalent workflow: generate the OO7 application trace once, write it
as line-JSON, and replay the same file under two different policies — the
runs see byte-identical event streams, so any difference is purely the
policy's doing.

Run with::

    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import (
    Oo7Application,
    OracleEstimator,
    SagaPolicy,
    SaioPolicy,
    Simulation,
    SimulationConfig,
    TINY,
)
from repro.sim.report import format_table
from repro.workload import read_trace, write_trace


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "oo7-tiny.jsonl"

        # 1. Record once.
        application = Oo7Application(TINY, seed=123)
        count = write_trace(application.events(), trace_path)
        size_kb = trace_path.stat().st_size / 1024
        print(f"recorded {count:,} events to {trace_path.name} ({size_kb:.0f} KB)")

        # 2. Peek at the head of the file — it is plain line-JSON.
        with open(trace_path) as handle:
            for line in [next(handle) for _ in range(4)]:
                print(f"  {line.strip()}")

        # 3. Replay the identical trace under different policies.
        from repro.storage.heap import StoreConfig

        store_cfg = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
        rows = []
        for label, policy in (
            ("SAIO @ 15% I/O", SaioPolicy(io_fraction=0.15, initial_interval=50)),
            (
                "SAGA @ 15% garbage",
                SagaPolicy(
                    garbage_fraction=0.15,
                    estimator=OracleEstimator(),
                    initial_interval=30,
                ),
            ),
        ):
            simulation = Simulation(
                policy=policy,
                config=SimulationConfig(store=store_cfg, preamble_collections=2),
            )
            summary = simulation.run(read_trace(trace_path)).summary
            rows.append(
                [
                    label,
                    summary.events,
                    summary.collections,
                    f"{summary.gc_io_fraction:.1%}",
                    f"{summary.garbage_fraction_mean:.1%}",
                ]
            )

        print()
        print(
            format_table(
                ["policy", "events replayed", "collections", "GC I/O share", "mean garbage"],
                rows,
                title="Two policies replaying one recorded trace",
            )
        )
        print(
            "\nBoth rows replayed the exact same file; the differing columns"
            "\nare the policies' choices, nothing else."
        )


if __name__ == "__main__":
    main()
