"""The §5 future-work direction: coupling SAIO with SAGA's estimates.

"The SAIO policy could use information provided by the SAGA heuristics to
determine the cost-effectiveness of the I/O operations being performed,
and adjusting itself accordingly."

This example compares plain SAIO against the coupled policy on a workload
with a long garbage-free stretch: plain SAIO keeps burning its I/O budget
on empty collections, while the coupled policy stretches its interval when
the estimated garbage level says collections are not cost-effective.

Run with::

    python examples/coupled_policy.py
"""

from repro import (
    CoupledSaioSagaPolicy,
    FgsHbEstimator,
    SaioPolicy,
    Simulation,
    SimulationConfig,
    StoreConfig,
    SyntheticPhase,
    SyntheticWorkload,
)
from repro.sim.report import format_table

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)

PHASES = [
    # Garbage-rich churn: collections are worth their I/O.
    SyntheticPhase(
        name="churn",
        operations=2000,
        create_weight=1.0,
        delete_weight=1.0,
        access_weight=1.0,
        cluster_size=8,
        object_size=128,
    ),
    # Read-only stretch: plenty of I/O, zero garbage creation.
    SyntheticPhase(
        name="read-only",
        operations=4000,
        create_weight=0.0,
        delete_weight=0.0,
        access_weight=1.0,
    ),
    # Churn again.
    SyntheticPhase(
        name="churn-2",
        operations=2000,
        create_weight=1.0,
        delete_weight=1.0,
        access_weight=1.0,
        cluster_size=8,
        object_size=128,
    ),
]


def run(policy):
    workload = SyntheticWorkload(PHASES, seed=5, initial_clusters=150)
    simulation = Simulation(
        policy=policy, config=SimulationConfig(store=STORE, preamble_collections=2)
    )
    return simulation.run(workload.events())


def main() -> None:
    plain = run(SaioPolicy(io_fraction=0.15, initial_interval=100))
    coupled = run(
        CoupledSaioSagaPolicy(
            io_fraction=0.15,
            garbage_fraction=0.10,
            estimator=FgsHbEstimator(history=0.8),
            max_scale=4.0,
            initial_interval=100,
        )
    )

    rows = []
    for label, result in (("SAIO", plain), ("SAIO × SAGA (coupled)", coupled)):
        summary = result.summary
        empties = sum(1 for r in result.collections if r.reclaimed_bytes == 0)
        reclaimed = summary.total_reclaimed_bytes
        cost = summary.gc_io_total
        rows.append(
            [
                label,
                summary.collections,
                empties,
                f"{summary.gc_io_fraction:.2%}",
                f"{reclaimed / 1024:.0f} KB",
                f"{reclaimed / max(1, cost):,.0f} B/IO",
            ]
        )
    print(
        format_table(
            ["policy", "collections", "empty collections", "GC I/O share",
             "reclaimed", "yield per GC I/O"],
            rows,
            title="Coupling SAIO with garbage estimates (15% I/O budget)",
        )
    )
    print(
        "\nThe coupled policy trades a little of its I/O budget for much"
        "\nbetter cost-effectiveness: it skips collections while the"
        "\nestimated garbage level is far below target (the read-only"
        "\nstretch) and tightens up again when churn resumes."
    )


if __name__ == "__main__":
    main()
